//! **Chaos experiment** — is the paper's headline robust to an imperfect
//! wire?
//!
//! The testbed behind Figures 1-8 has a perfect bottleneck: every loss is
//! congestive. Real links corrupt, drop, and flap. This experiment re-runs
//! the Figure-1 endpoints — the fair 50/50 split against the "full speed,
//! then idle" serial schedule — with random loss injected on the
//! bottleneck, sweeping the rate from 0 to 1%.
//!
//! Built on the [`scenario`] DSL: each endpoint is a declarative
//! [`ScenarioBuilder`] composition, and the energy ordering is checked
//! by a [`Expectation::SavingsOrdering`] expectation per seed — a
//! structured verdict with the measured savings, not an eyeballed
//! table. If every ordering check passes under loss, the unfairness
//! argument does not depend on a pristine wire.

use crate::scale::Scale;
use analysis::stats::Summary;
use scenario::expect;
use scenario::prelude::*;
use serde::{Deserialize, Serialize};

/// The savings floor each per-seed ordering check asserts: serial must
/// undercut fair by at least this much (the paper's clean-wire headline
/// is ~2x bigger; the floor leaves room for loss-induced noise).
pub const MIN_SAVINGS_PCT: f64 = 2.0;

/// Configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bytes per flow.
    pub per_flow_bytes: u64,
    /// MTU.
    pub mtu: u32,
    /// Random loss probabilities to sweep (0 = the clean baseline).
    pub loss_rates: Vec<f64>,
    /// Seeds (one fair + one serial run per seed per rate).
    pub seeds: Vec<u64>,
    /// Persist per-run observability artifacts (Perfetto trace,
    /// Prometheus snapshot, flight dumps on abort) into this directory.
    /// `None` runs uninstrumented.
    pub trace_out: Option<std::path::PathBuf>,
}

impl Config {
    /// The default sweep at the given scale: clean, 0.01%, 0.1%, 1%.
    pub fn at_scale(scale: Scale) -> Config {
        Config {
            per_flow_bytes: scale.two_flow_bytes,
            mtu: 9000,
            loss_rates: vec![0.0, 1e-4, 1e-3, 1e-2],
            seeds: scale.seeds(),
            trace_out: None,
        }
    }
}

/// One loss rate's measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Injected random-loss probability.
    pub loss_rate: f64,
    /// Fair-split total sender energy (J).
    pub fair_energy_j: Summary,
    /// Serial-schedule total sender energy (J).
    pub serial_energy_j: Summary,
    /// Serial savings over fair (%), the Figure-1 headline quantity.
    pub savings_pct: Summary,
    /// Mean frames lost to the fault layer per fair run.
    pub injected_drops: f64,
    /// Mean retransmitted segments per fair run (all flows).
    pub retx: f64,
    /// The per-seed `savings_ordering` verdicts: each run's serial
    /// schedule checked against its fair baseline by the expectations
    /// engine (measured savings, target floor, pass/fail).
    pub ordering_checks: Vec<ExpectationReport>,
}

impl ChaosRow {
    /// Every seed's ordering check passed.
    pub fn ordering_holds(&self) -> bool {
        self.ordering_checks.iter().all(|c| c.passed)
    }
}

/// The sweep result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// One row per loss rate, in sweep order.
    pub rows: Vec<ChaosRow>,
    /// Observability artifacts that failed to persist, as
    /// `"<label>: <error>"` strings. A non-empty list means the sweep's
    /// *measurements* are complete but its trace sidecars are not: the
    /// run degraded instead of aborting (the chaos binary exits 5).
    pub persist_failures: Vec<String>,
}

/// Why the sweep failed.
#[derive(Debug)]
pub enum ChaosError {
    /// A scenario run failed (abort, stall, deadline).
    Scenario(RunError),
    /// An observability artifact could not be persisted.
    Persist(crate::campaign::persist::PersistError),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Scenario(e) => write!(f, "{e}"),
            ChaosError::Persist(e) => write!(f, "trace-out: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<RunError> for ChaosError {
    fn from(e: RunError) -> Self {
        ChaosError::Scenario(e)
    }
}

impl From<crate::campaign::persist::PersistError> for ChaosError {
    fn from(e: crate::campaign::persist::PersistError) -> Self {
        ChaosError::Persist(e)
    }
}

/// Declare one sweep endpoint: bulk CUBIC flows on the dumbbell, the
/// swept loss rate as a chaos phase, observability when `--trace-out`
/// is active.
fn endpoint(
    cfg: &Config,
    name: &str,
    flows: Vec<Traffic>,
    loss: f64,
    seed: u64,
    observed: bool,
) -> ScenarioSpec {
    let mut b = ScenarioBuilder::new(name).with_seed(seed).with_mtu(cfg.mtu);
    for t in flows {
        b = b.traffic(t);
    }
    if loss > 0.0 {
        b = b.chaos(ChaosPhase::Loss { prob: loss });
    }
    if observed && cfg.trace_out.is_some() {
        b = b
            .with_observability()
            .with_trace(SimDuration::from_millis(10));
    }
    b.build().expect("chaos endpoints are well-formed")
}

/// Persist one sweep run's artifacts (no-op unless `trace_out` is set).
fn persist_run(
    cfg: &Config,
    label: &str,
    run: &ScenarioRun,
) -> std::result::Result<(), ChaosError> {
    if let (Some(dir), Some(report)) = (&cfg.trace_out, &run.obs) {
        let aborted = run
            .measured
            .reports
            .iter()
            .any(|r| !r.outcome.is_completed());
        crate::campaign::artifacts::persist_cell_obs(dir, label, report, aborted)?;
    }
    Ok(())
}

/// Run the sweep. An injected fault can kill a path outright (the flow
/// aborts, the scenario errors); that surfaces as an `Err` naming the
/// scenario instead of a panic in the middle of a campaign. Artifact
/// persistence is *not* load-bearing the same way: a dead `--trace-out`
/// disk degrades the run (failures collected in
/// [`Result::persist_failures`], sweep continues) rather than throwing
/// away the measurements already taken.
pub fn run(cfg: &Config) -> std::result::Result<Result, ChaosError> {
    let bulk = || Traffic::bulk(CcaKind::Cubic, cfg.per_flow_bytes);
    let mut rows = Vec::with_capacity(cfg.loss_rates.len());
    let mut persist_failures = Vec::new();
    for (rate_idx, &loss) in cfg.loss_rates.iter().enumerate() {
        let mut fair_e = Vec::new();
        let mut serial_e = Vec::new();
        let mut savings = Vec::new();
        let mut drops = Vec::new();
        let mut retx = Vec::new();
        let mut checks = Vec::new();
        for &seed in &cfg.seeds {
            // The serial hand-off time: when a solo flow on the *same
            // lossy wire* finishes (the loss is part of the schedule
            // being compared, not an external disturbance).
            let solo = endpoint(cfg, "solo", vec![bulk()], loss, seed, false).run()?;
            let handoff = solo.measured.reports[0]
                .completed_at
                .saturating_since(SimTime::ZERO);

            let fair = endpoint(cfg, "fair", vec![bulk(), bulk()], loss, seed, true).run()?;
            let serial = endpoint(
                cfg,
                "serial",
                vec![
                    bulk(),
                    Traffic::Bulk {
                        cca: CcaKind::Cubic,
                        bytes: cfg.per_flow_bytes,
                        start: handoff,
                    },
                ],
                loss,
                seed,
                true,
            )
            .run()?;
            for (label, run) in [
                (format!("rate{rate_idx}_seed{seed}_fair"), &fair),
                (format!("rate{rate_idx}_seed{seed}_serial"), &serial),
            ] {
                if let Err(e) = persist_run(cfg, &label, run) {
                    eprintln!("warning: chaos trace for {label} lost: {e}");
                    persist_failures.push(format!("{label}: {e}"));
                }
            }

            // The Fig-1 ordering as a checked expectation: serial's
            // window-equalized energy must undercut fair's.
            let ordering = Expectation::SavingsOrdering {
                min_savings_pct: MIN_SAVINGS_PCT,
            }
            .evaluate(&serial.measured, Some(&fair.measured));
            let (se, fe) = expect::equalized_energy_j(&serial.measured, &fair.measured);
            fair_e.push(fe);
            serial_e.push(se);
            savings.push(ordering.measured);
            checks.push(ordering);
            drops.push(fair.measured.injected_drops as f64);
            retx.push(
                fair.measured
                    .reports
                    .iter()
                    .map(|r| r.retransmits)
                    .sum::<u64>() as f64,
            );
        }
        rows.push(ChaosRow {
            loss_rate: loss,
            fair_energy_j: Summary::of(&fair_e),
            serial_energy_j: Summary::of(&serial_e),
            savings_pct: Summary::of(&savings),
            injected_drops: drops.iter().sum::<f64>() / drops.len() as f64,
            retx: retx.iter().sum::<f64>() / retx.len() as f64,
            ordering_checks: checks,
        });
    }
    Ok(Result {
        rows,
        persist_failures,
    })
}

/// Render the paper-style table.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new([
        "loss rate (%)",
        "injected drops",
        "retx",
        "fair (J)",
        "serial (J)",
        "serial savings (%)",
        "ordering check",
    ]);
    for row in &result.rows {
        let passed = row.ordering_checks.iter().filter(|c| c.passed).count();
        t.row([
            format!("{:.2}", row.loss_rate * 100.0),
            format!("{:.0}", row.injected_drops),
            format!("{:.0}", row.retx),
            format!("{}", row.fair_energy_j),
            format!("{}", row.serial_energy_j),
            format!("{}", row.savings_pct),
            format!("{passed}/{} pass", row.ordering_checks.len()),
        ]);
    }
    format!(
        "Chaos — Figure-1 energy ordering under injected random loss\n\
         (fair 50/50 vs full-speed-then-idle; every seed's ordering is\n\
         checked by a savings_ordering expectation, floor {MIN_SAVINGS_PCT}%)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    fn tiny() -> Config {
        Config {
            per_flow_bytes: 125 * MB,
            mtu: 9000,
            loss_rates: vec![0.0, 1e-3],
            seeds: vec![1],
            trace_out: None,
        }
    }

    #[test]
    fn energy_ordering_survives_injected_loss() {
        let r = run(&tiny()).expect("sweep completes");
        for row in &r.rows {
            assert!(
                row.savings_pct.mean > 5.0,
                "serial must stay cheaper at loss {}: {:?}",
                row.loss_rate,
                row.savings_pct
            );
            assert!(
                row.ordering_holds(),
                "every seed's savings_ordering check must pass at loss {}: {:?}",
                row.loss_rate,
                row.ordering_checks
            );
        }
        // And the savings stay in the same regime as the clean run.
        let delta = (r.rows[0].savings_pct.mean - r.rows[1].savings_pct.mean).abs();
        assert!(
            delta < 6.0,
            "0.1% loss must not move the headline by {delta} points"
        );
    }

    #[test]
    fn ordering_checks_carry_structured_verdicts() {
        let r = run(&tiny()).expect("sweep completes");
        for row in &r.rows {
            assert_eq!(row.ordering_checks.len(), 1, "one check per seed");
            let c = &row.ordering_checks[0];
            assert_eq!(c.name, "savings_ordering");
            assert_eq!(c.target, MIN_SAVINGS_PCT);
            assert!(
                (c.measured - row.savings_pct.mean).abs() < 1e-9,
                "the summarized savings are the checked savings"
            );
        }
    }

    #[test]
    fn drops_are_injected_only_when_requested() {
        let r = run(&tiny()).expect("sweep completes");
        assert_eq!(r.rows[0].injected_drops, 0.0, "clean wire");
        assert!(r.rows[1].injected_drops > 0.0, "0.1% loss must hit frames");
        assert!(
            r.rows[1].retx >= r.rows[1].injected_drops,
            "every injected data loss forces at least one retransmission"
        );
    }

    #[test]
    fn dead_trace_out_degrades_instead_of_aborting() {
        // Park the artifact directory under a regular file so every
        // persist attempt fails with a real I/O error.
        let blocker = std::env::temp_dir().join("greenenvy-chaos-blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let mut cfg = tiny();
        cfg.loss_rates = vec![0.0];
        cfg.trace_out = Some(blocker.join("traces"));
        let r = run(&cfg).expect("measurements must survive a dead artifact disk");
        assert_eq!(r.rows.len(), 1, "the sweep itself still completes");
        assert_eq!(
            r.persist_failures.len(),
            2,
            "fair + serial traces both reported lost: {:?}",
            r.persist_failures
        );
        assert!(r.persist_failures[0].contains("rate0_seed1_fair"));
        assert!(r.persist_failures[1].contains("rate0_seed1_serial"));
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn render_lists_every_rate() {
        let r = run(&tiny()).expect("sweep completes");
        let s = render(&r);
        assert!(s.contains("Chaos"));
        assert!(s.contains("0.00"));
        assert!(s.contains("0.10"));
        assert!(s.contains("1/1 pass"));
    }
}
