//! **Chaos experiment** — is the paper's headline robust to an imperfect
//! wire?
//!
//! The testbed behind Figures 1-8 has a perfect bottleneck: every loss is
//! congestive. Real links corrupt, drop, and flap. This experiment re-runs
//! the Figure-1 endpoints — the fair 50/50 split against the "full speed,
//! then idle" serial schedule — with random loss injected on the
//! bottleneck ([`netsim::fault::FaultSpec`]), sweeping the rate from 0 to
//! 1%. If the energy ordering (serial cheaper than fair) survives, the
//! unfairness argument does not depend on a pristine wire.

use crate::scale::Scale;
use analysis::stats::Summary;
use cca::CcaKind;
use netsim::fault::FaultSpec;
use netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// Configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bytes per flow.
    pub per_flow_bytes: u64,
    /// MTU.
    pub mtu: u32,
    /// Random loss probabilities to sweep (0 = the clean baseline).
    pub loss_rates: Vec<f64>,
    /// Seeds (one fair + one serial run per seed per rate).
    pub seeds: Vec<u64>,
    /// Persist per-run observability artifacts (Perfetto trace,
    /// Prometheus snapshot, flight dumps on abort) into this directory.
    /// `None` runs uninstrumented.
    pub trace_out: Option<std::path::PathBuf>,
}

impl Config {
    /// The default sweep at the given scale: clean, 0.01%, 0.1%, 1%.
    pub fn at_scale(scale: Scale) -> Config {
        Config {
            per_flow_bytes: scale.two_flow_bytes,
            mtu: 9000,
            loss_rates: vec![0.0, 1e-4, 1e-3, 1e-2],
            seeds: scale.seeds(),
            trace_out: None,
        }
    }
}

/// One loss rate's measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Injected random-loss probability.
    pub loss_rate: f64,
    /// Fair-split total sender energy (J).
    pub fair_energy_j: Summary,
    /// Serial-schedule total sender energy (J).
    pub serial_energy_j: Summary,
    /// Serial savings over fair (%), the Figure-1 headline quantity.
    pub savings_pct: Summary,
    /// Mean frames lost to the fault layer per fair run.
    pub injected_drops: f64,
    /// Mean retransmitted segments per fair run (all flows).
    pub retx: f64,
}

/// The sweep result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// One row per loss rate, in sweep order.
    pub rows: Vec<ChaosRow>,
}

fn apply_fault(scenario: Scenario, loss: f64) -> Scenario {
    if loss > 0.0 {
        scenario.with_fault(FaultSpec::random_loss(loss))
    } else {
        scenario
    }
}

/// Instrument a sweep scenario when `--trace-out` is active.
fn observed(scenario: Scenario, cfg: &Config) -> Scenario {
    if cfg.trace_out.is_some() {
        scenario
            .with_observability()
            .with_trace(netsim::time::SimDuration::from_millis(10))
    } else {
        scenario
    }
}

/// Persist one sweep run's artifacts (no-op unless `trace_out` is set).
fn persist_run(
    cfg: &Config,
    label: &str,
    out: &ScenarioOutcome,
) -> std::result::Result<(), ChaosError> {
    if let (Some(dir), Some(report)) = (&cfg.trace_out, &out.obs) {
        let aborted = out.reports.iter().any(|r| !r.outcome.is_completed());
        crate::campaign::artifacts::persist_cell_obs(dir, label, report, aborted)?;
    }
    Ok(())
}

/// Why the sweep failed.
#[derive(Debug)]
pub enum ChaosError {
    /// A scenario run failed (abort, stall, deadline).
    Scenario(ScenarioError),
    /// An observability artifact could not be persisted.
    Persist(crate::campaign::persist::PersistError),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Scenario(e) => write!(f, "{e}"),
            ChaosError::Persist(e) => write!(f, "trace-out: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<ScenarioError> for ChaosError {
    fn from(e: ScenarioError) -> Self {
        ChaosError::Scenario(e)
    }
}

impl From<crate::campaign::persist::PersistError> for ChaosError {
    fn from(e: crate::campaign::persist::PersistError) -> Self {
        ChaosError::Persist(e)
    }
}

fn fair_scenario(cfg: &Config, loss: f64, seed: u64) -> Scenario {
    apply_fault(
        Scenario::new(
            cfg.mtu,
            vec![
                FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
                FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            ],
        )
        .with_seed(seed),
        loss,
    )
}

/// Serial schedule under the same fault: flow #2 starts when a solo flow
/// on the *same lossy wire* would have finished (the loss is part of the
/// schedule being compared, not an external disturbance).
fn serial_scenario(
    cfg: &Config,
    loss: f64,
    seed: u64,
) -> std::result::Result<Scenario, ScenarioError> {
    let solo = apply_fault(
        Scenario::new(
            cfg.mtu,
            vec![FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)],
        )
        .with_seed(seed),
        loss,
    );
    let solo_fct = workload::scenario::run(&solo)?.reports[0].completed_at;
    Ok(apply_fault(
        Scenario::new(
            cfg.mtu,
            vec![
                FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
                FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)
                    .with_start_delay(solo_fct.saturating_since(SimTime::ZERO)),
            ],
        )
        .with_seed(seed),
        loss,
    ))
}

/// Run the sweep. An injected fault can kill a path outright (the flow
/// aborts, the scenario errors); that surfaces as an `Err` naming the
/// scenario instead of a panic in the middle of a campaign.
pub fn run(cfg: &Config) -> std::result::Result<Result, ChaosError> {
    let base_w = energy::calibration::P_IDLE_W + energy::calibration::reference_fan().watts(0.0);
    let mut rows = Vec::with_capacity(cfg.loss_rates.len());
    for (rate_idx, &loss) in cfg.loss_rates.iter().enumerate() {
        let mut fair_e = Vec::new();
        let mut serial_e = Vec::new();
        let mut savings = Vec::new();
        let mut drops = Vec::new();
        let mut retx = Vec::new();
        for &seed in &cfg.seeds {
            let fair = workload::scenario::run(&observed(fair_scenario(cfg, loss, seed), cfg))?;
            let serial =
                workload::scenario::run(&observed(serial_scenario(cfg, loss, seed)?, cfg))?;
            persist_run(cfg, &format!("rate{rate_idx}_seed{seed}_fair"), &fair)?;
            persist_run(cfg, &format!("rate{rate_idx}_seed{seed}_serial"), &serial)?;
            // Equalize the measurement windows analytically (see fig1):
            // completed hosts idle at base power, two sender hosts each.
            let common = fair.window.max(serial.window).as_secs_f64();
            let fe = fair.sender_energy_j + (common - fair.window.as_secs_f64()) * base_w * 2.0;
            let se = serial.sender_energy_j + (common - serial.window.as_secs_f64()) * base_w * 2.0;
            fair_e.push(fe);
            serial_e.push(se);
            savings.push(100.0 * (fe - se) / fe);
            drops.push(fair.injected_drops as f64);
            retx.push(fair.reports.iter().map(|r| r.retransmits).sum::<u64>() as f64);
        }
        rows.push(ChaosRow {
            loss_rate: loss,
            fair_energy_j: Summary::of(&fair_e),
            serial_energy_j: Summary::of(&serial_e),
            savings_pct: Summary::of(&savings),
            injected_drops: drops.iter().sum::<f64>() / drops.len() as f64,
            retx: retx.iter().sum::<f64>() / retx.len() as f64,
        });
    }
    Ok(Result { rows })
}

/// Render the paper-style table.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new([
        "loss rate (%)",
        "injected drops",
        "retx",
        "fair (J)",
        "serial (J)",
        "serial savings (%)",
    ]);
    for row in &result.rows {
        t.row([
            format!("{:.2}", row.loss_rate * 100.0),
            format!("{:.0}", row.injected_drops),
            format!("{:.0}", row.retx),
            format!("{}", row.fair_energy_j),
            format!("{}", row.serial_energy_j),
            format!("{}", row.savings_pct),
        ]);
    }
    format!(
        "Chaos — Figure-1 energy ordering under injected random loss\n\
         (fair 50/50 vs full-speed-then-idle; the ordering must survive\n\
         an imperfect wire for the unfairness argument to be robust)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    fn tiny() -> Config {
        Config {
            per_flow_bytes: 125 * MB,
            mtu: 9000,
            loss_rates: vec![0.0, 1e-3],
            seeds: vec![1],
            trace_out: None,
        }
    }

    #[test]
    fn energy_ordering_survives_injected_loss() {
        let r = run(&tiny()).expect("sweep completes");
        for row in &r.rows {
            assert!(
                row.savings_pct.mean > 5.0,
                "serial must stay cheaper at loss {}: {:?}",
                row.loss_rate,
                row.savings_pct
            );
        }
        // And the savings stay in the same regime as the clean run.
        let delta = (r.rows[0].savings_pct.mean - r.rows[1].savings_pct.mean).abs();
        assert!(
            delta < 6.0,
            "0.1% loss must not move the headline by {delta} points"
        );
    }

    #[test]
    fn drops_are_injected_only_when_requested() {
        let r = run(&tiny()).expect("sweep completes");
        assert_eq!(r.rows[0].injected_drops, 0.0, "clean wire");
        assert!(r.rows[1].injected_drops > 0.0, "0.1% loss must hit frames");
        assert!(
            r.rows[1].retx >= r.rows[1].injected_drops,
            "every injected data loss forces at least one retransmission"
        );
    }

    #[test]
    fn render_lists_every_rate() {
        let r = run(&tiny()).expect("sweep completes");
        let s = render(&r);
        assert!(s.contains("Chaos"));
        assert!(s.contains("0.00"));
        assert!(s.contains("0.10"));
    }
}
