//! Experiment scaling.
//!
//! The paper's full workload (50 GB per transfer, 10 repetitions) takes
//! hours to simulate at packet granularity. All figure results are
//! *rate-based* (power, goodput, savings percentages) or scale linearly
//! in the transfer size (energy, retransmissions), so smaller transfers
//! reproduce the same shapes. [`Scale`] picks the operating point; the
//! `GREENENVY_SCALE` environment variable (`paper`, `standard`, `quick`)
//! selects one at runtime.

use netsim::units::{GB, MB};

/// How big to run the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Bytes per single-flow bulk transfer (the paper uses 50 GB).
    pub transfer_bytes: u64,
    /// Bytes per flow in the two-flow Figure-1/3 experiments (the paper
    /// uses 10 Gbit = 1.25 GB).
    pub two_flow_bytes: u64,
    /// Repetitions per scenario (the paper uses 10).
    pub repetitions: usize,
    /// Label for reports.
    pub name: &'static str,
}

impl Scale {
    /// The paper's exact workload: 50 GB, 1.25 GB two-flow, 10 reps.
    pub fn paper() -> Scale {
        Scale {
            transfer_bytes: 50 * GB,
            two_flow_bytes: 1_250 * MB,
            repetitions: 10,
            name: "paper",
        }
    }

    /// A 10x-reduced workload whose results match the paper's shapes;
    /// the default for recorded results.
    pub fn standard() -> Scale {
        Scale {
            transfer_bytes: 5 * GB,
            two_flow_bytes: 1_250 * MB,
            repetitions: 3,
            name: "standard",
        }
    }

    /// A fast smoke-test workload for CI and benches.
    pub fn quick() -> Scale {
        Scale {
            transfer_bytes: 250 * MB,
            two_flow_bytes: 125 * MB,
            repetitions: 2,
            name: "quick",
        }
    }

    /// A miniature workload for durability drills: small enough that a
    /// kill/resume cycle through the whole 40-cell campaign fits in a
    /// CI stage, large enough that cells take measurable wall time.
    pub fn tiny() -> Scale {
        Scale {
            transfer_bytes: 25 * MB,
            two_flow_bytes: 12 * MB,
            repetitions: 1,
            name: "tiny",
        }
    }

    /// Read `GREENENVY_SCALE` (`paper` | `standard` | `quick` | `tiny`),
    /// defaulting to [`Scale::standard`].
    pub fn from_env() -> Scale {
        match std::env::var("GREENENVY_SCALE").as_deref() {
            Ok("paper") => Scale::paper(),
            Ok("quick") => Scale::quick(),
            Ok("tiny") => Scale::tiny(),
            _ => Scale::standard(),
        }
    }

    /// Factor to scale an energy/retransmission count measured at this
    /// scale up to the paper's 50 GB transfers (approximate: the
    /// rate-proportional part of energy dominates).
    pub fn to_paper_factor(&self) -> f64 {
        (50 * GB) as f64 / self.transfer_bytes as f64
    }

    /// Deterministic seed list for the repetitions.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.repetitions as u64)
            .map(|i| 1000 + i * 7919)
            .collect()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Scale::paper().transfer_bytes, 50 * GB);
        assert_eq!(Scale::paper().repetitions, 10);
        assert_eq!(Scale::quick().repetitions, 2);
        assert_eq!(Scale::default(), Scale::standard());
    }

    #[test]
    fn paper_factor() {
        assert_eq!(Scale::paper().to_paper_factor(), 1.0);
        assert_eq!(Scale::standard().to_paper_factor(), 10.0);
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let s = Scale::paper().seeds();
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert_eq!(s, Scale::paper().seeds());
    }
}
