//! # greenenvy — the experiment layer
//!
//! Reproduces every table and figure of *"Green With Envy: Unfair
//! Congestion Control Algorithms Can Be More Energy Efficient"*
//! (HotNets '23) on the simulated testbed:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — energy savings vs bandwidth allocation |
//! | [`fig2`] | Fig. 2 — concave power-vs-throughput curve + mix chord |
//! | [`fig3`] | Fig. 3 — fair vs full-speed-then-idle traces |
//! | [`fig4`] | Fig. 4 — loaded-host power curves + savings |
//! | [`fig5`] | Fig. 5 — energy per CCA × MTU |
//! | [`fig6`] | Fig. 6 — power per CCA × MTU, energy-power correlation |
//! | [`fig7`] | Fig. 7 — energy vs completion time scatter |
//! | [`fig8`] | Fig. 8 — energy vs retransmissions scatter |
//! | [`theorem`] | Theorem 1 — fair allocations maximize power |
//! | [`savings`] | §4.2 — the $10M/year extrapolation |
//! | [`extensions`] | §5 future work: flow multiplexing, SRPT, incast |
//!
//! Each module exposes a `Config`/`run`/`render` triple returning typed,
//! serde-serializable results; [`scale::Scale`] trades fidelity for time
//! (`GREENENVY_SCALE=paper|standard|quick`). Figures 5-8 share one
//! measurement campaign ([`matrix`]), exactly as in the paper.
//!
//! ```no_run
//! use greenenvy::{fig1, scale::Scale};
//!
//! let result = fig1::run(&fig1::Config::at_scale(Scale::quick()));
//! println!("{}", fig1::render(&result));
//! assert!(result.peak_savings_pct > 10.0); // the paper's ~16%
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod chaos;
pub mod exitcode;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod matrix;
pub mod resilience;
pub mod savings;
pub mod scale;
pub mod theorem;

pub use scale::Scale;

/// The commonly-used names, re-exported in one place.
pub mod prelude {
    pub use crate::campaign::{
        install_signal_handlers, run_campaign, CampaignOptions, CampaignReport, CancelToken,
    };
    pub use crate::matrix::{
        run_matrix, Cell, CellError, CellFailure, CellPolicy, Matrix, MATRIX_SCHEMA_VERSION, MTUS,
    };
    pub use crate::scale::Scale;
    pub use crate::{extensions, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, savings, theorem};
}
