//! Extensions: the experiments the paper's §5 lists as future work.
//!
//! * [`multiplexed`] — "multiplexing multiple flows at the same sender":
//!   do the unfairness savings survive when both flows share one CPU
//!   socket? (No — per-socket power depends on the aggregate rate, which
//!   every schedule keeps at C. The savings are a property of *spreading
//!   flows across sockets and idling some of them*.)
//! * [`srpt`] — "CCAs should aim to send as fast as possible for minimal
//!   completion time": compare fair sharing of a mixed-size flow batch
//!   with a shortest-remaining-processing-time serial schedule, which
//!   improves mean completion time *and* energy simultaneously.
//! * [`incast`] — "and incast": fan N synchronized senders into the
//!   bottleneck and watch burst losses and per-byte energy grow with N.

use cca::CcaKind;
use netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// Common base power used to extend energies to a shared window
/// (a completed host idles at exactly this power).
fn base_power_w() -> f64 {
    energy::calibration::P_IDLE_W
}

/// Extend an outcome's sender energy to `window_s`, charging idle power
/// for the tail on each of `hosts` sender hosts.
fn energy_over(out: &ScenarioOutcome, window_s: f64, hosts: f64) -> f64 {
    out.sender_energy_j + (window_s - out.window.as_secs_f64()).max(0.0) * base_power_w() * hosts
}

/// §5 — flow multiplexing at one sender.
pub mod multiplexed {
    use super::*;

    /// Configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Bytes per flow.
        pub per_flow_bytes: u64,
        /// MTU.
        pub mtu: u32,
        /// Seed.
        pub seed: u64,
    }

    impl Config {
        /// Default at a given scale.
        pub fn at_scale(scale: crate::scale::Scale) -> Config {
            Config {
                per_flow_bytes: scale.two_flow_bytes,
                mtu: 9000,
                seed: 1,
            }
        }
    }

    /// The comparison.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct Result {
        /// Full-speed-then-idle savings with one host per flow (%).
        pub separate_savings_pct: f64,
        /// The same schedule comparison with both flows multiplexed on a
        /// single sender host (%).
        pub colocated_savings_pct: f64,
    }

    fn schedule_pair(cfg: &Config, colocate: bool) -> (f64, f64) {
        let mk = |flows: Vec<FlowSpec>| {
            let mut s = Scenario::new(cfg.mtu, flows).with_seed(cfg.seed);
            if colocate {
                s = s.with_colocated_senders();
            }
            workload::scenario::run(&s).expect("schedule completes")
        };
        let fair = mk(vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
        ]);
        let solo = mk(vec![FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)]);
        let t1 = solo.reports[0].completed_at.saturating_since(SimTime::ZERO);
        let serial = mk(vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes).with_start_delay(t1),
        ]);
        let hosts = if colocate { 1.0 } else { 2.0 };
        let w = fair.window.as_secs_f64().max(serial.window.as_secs_f64());
        (energy_over(&fair, w, hosts), energy_over(&serial, w, hosts))
    }

    /// Run the comparison.
    pub fn run(cfg: &Config) -> Result {
        let (fair_sep, serial_sep) = schedule_pair(cfg, false);
        let (fair_col, serial_col) = schedule_pair(cfg, true);
        Result {
            separate_savings_pct: 100.0 * (fair_sep - serial_sep) / fair_sep,
            colocated_savings_pct: 100.0 * (fair_col - serial_col) / fair_col,
        }
    }

    /// Render the finding.
    pub fn render(r: &Result) -> String {
        format!(
            "Extension: multiplexing at one sender (paper §5)\n\n\
             full-speed-then-idle savings, one socket per flow: {:+.2}%\n\
             full-speed-then-idle savings, flows multiplexed:   {:+.2}%\n\n\
             The savings are a property of idling *sockets*: once both\n\
             flows share one package, every schedule pushes the same\n\
             aggregate and the advantage collapses.\n",
            r.separate_savings_pct, r.colocated_savings_pct
        )
    }
}

/// §5 — SRPT-style scheduling beats fair sharing on both metrics.
pub mod srpt {
    use super::*;

    /// Configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Flow sizes in bytes (a mixed batch).
        pub flow_bytes: Vec<u64>,
        /// MTU.
        pub mtu: u32,
        /// Seed.
        pub seed: u64,
    }

    impl Config {
        /// Default: a 1:2:4:8 mix summing to four `two_flow_bytes` units.
        pub fn at_scale(scale: crate::scale::Scale) -> Config {
            let b = scale.two_flow_bytes / 4;
            Config {
                flow_bytes: vec![b, 2 * b, 4 * b, 8 * b],
                mtu: 9000,
                seed: 1,
            }
        }
    }

    /// One schedule's outcome.
    #[derive(Clone, Copy, Debug, Serialize, Deserialize)]
    pub struct Schedule {
        /// Mean flow completion time (s), measured from experiment start
        /// (scheduling delay included, as SRPT analyses do).
        pub mean_fct_s: f64,
        /// Total sender energy over the common window (J).
        pub energy_j: f64,
        /// Window (s).
        pub window_s: f64,
    }

    /// The comparison.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct Result {
        /// Everyone-at-once fair sharing.
        pub fair: Schedule,
        /// Shortest-first serial schedule.
        pub srpt: Schedule,
        /// Energy saving of SRPT over fair (%).
        pub energy_savings_pct: f64,
        /// Mean-FCT improvement of SRPT over fair (%).
        pub fct_improvement_pct: f64,
    }

    fn measure(out: &ScenarioOutcome, hosts: f64, window_s: f64) -> Schedule {
        let mean_fct = out
            .reports
            .iter()
            .map(|r| r.completed_at.as_secs_f64())
            .sum::<f64>()
            / out.reports.len() as f64;
        Schedule {
            mean_fct_s: mean_fct,
            energy_j: energy_over(out, window_s, hosts),
            window_s,
        }
    }

    /// Run the comparison.
    pub fn run(cfg: &Config) -> Result {
        let hosts = cfg.flow_bytes.len() as f64;

        // Fair: everyone starts at once and shares.
        let fair_out = workload::scenario::run(
            &Scenario::new(
                cfg.mtu,
                cfg.flow_bytes
                    .iter()
                    .map(|&b| FlowSpec::bulk(CcaKind::Cubic, b))
                    .collect(),
            )
            .with_seed(cfg.seed),
        )
        .expect("fair batch completes");

        // SRPT: strictly shortest-first, one at a time at line rate.
        let mut order: Vec<usize> = (0..cfg.flow_bytes.len()).collect();
        order.sort_by_key(|&i| cfg.flow_bytes[i]);
        let wire_factor = cfg.mtu as f64 / (cfg.mtu - netsim::packet::HEADER_BYTES) as f64;
        let mut start = 0.0;
        let mut specs: Vec<(usize, FlowSpec)> = Vec::new();
        for &i in &order {
            let spec = FlowSpec::bulk(CcaKind::Cubic, cfg.flow_bytes[i])
                .with_start_delay(netsim::time::SimDuration::from_secs_f64(start));
            specs.push((i, spec));
            start += cfg.flow_bytes[i] as f64 * wire_factor * 8.0 / 10e9;
        }
        specs.sort_by_key(|&(i, _)| i); // restore flow-index order
        let srpt_out = workload::scenario::run(
            &Scenario::new(cfg.mtu, specs.into_iter().map(|(_, s)| s).collect())
                .with_seed(cfg.seed),
        )
        .expect("srpt batch completes");

        let w = fair_out
            .window
            .as_secs_f64()
            .max(srpt_out.window.as_secs_f64());
        let fair = measure(&fair_out, hosts, w);
        let srpt = measure(&srpt_out, hosts, w);
        Result {
            fair,
            srpt,
            energy_savings_pct: 100.0 * (fair.energy_j - srpt.energy_j) / fair.energy_j,
            fct_improvement_pct: 100.0 * (fair.mean_fct_s - srpt.mean_fct_s) / fair.mean_fct_s,
        }
    }

    /// Render the finding.
    pub fn render(r: &Result) -> String {
        format!(
            "Extension: SRPT scheduling (paper §5)\n\n\
             schedule  mean fct (s)  energy (J)\n\
             fair      {:>12.3}  {:>10.1}\n\
             srpt      {:>12.3}  {:>10.1}\n\n\
             SRPT improves mean completion time by {:.1}% AND saves {:.1}%\n\
             energy — fast-as-possible transmission is green, exactly the\n\
             direction the paper's §5 proposes.\n",
            r.fair.mean_fct_s,
            r.fair.energy_j,
            r.srpt.mean_fct_s,
            r.srpt.energy_j,
            r.fct_improvement_pct,
            r.energy_savings_pct
        )
    }
}

/// §5 — incast.
pub mod incast {
    use super::*;

    /// Configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Fan-in degrees to test.
        pub fan_in: Vec<usize>,
        /// Bytes per sender.
        pub bytes_per_sender: u64,
        /// MTU.
        pub mtu: u32,
        /// Seed.
        pub seed: u64,
    }

    impl Config {
        /// Default at a given scale.
        pub fn at_scale(scale: crate::scale::Scale) -> Config {
            Config {
                fan_in: vec![2, 4, 8, 16, 32],
                bytes_per_sender: scale.two_flow_bytes / 16,
                mtu: 9000,
                seed: 1,
            }
        }
    }

    /// One fan-in degree's measurements.
    #[derive(Clone, Copy, Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Number of synchronized senders.
        pub n: usize,
        /// Aggregate goodput (Gb/s).
        pub aggregate_gbps: f64,
        /// Queue drops.
        pub drops: u64,
        /// Retransmitted segments.
        pub retx: u64,
        /// Sender energy per gigabyte delivered (J/GB).
        pub energy_per_gb: f64,
    }

    /// The sweep.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct Result {
        /// One row per fan-in degree.
        pub rows: Vec<Row>,
    }

    /// Run the sweep.
    pub fn run(cfg: &Config) -> Result {
        let mut rows = Vec::new();
        for &n in &cfg.fan_in {
            let out = workload::scenario::run(
                &Scenario::new(
                    cfg.mtu,
                    (0..n)
                        .map(|_| FlowSpec::bulk(CcaKind::Cubic, cfg.bytes_per_sender))
                        .collect(),
                )
                .with_seed(cfg.seed),
            )
            .expect("incast completes");
            let total_bytes = (n as u64 * cfg.bytes_per_sender) as f64;
            rows.push(Row {
                n,
                aggregate_gbps: total_bytes * 8.0 / out.window.as_secs_f64() / 1e9,
                drops: out.dropped_pkts,
                retx: out.reports.iter().map(|r| r.retransmits).sum(),
                energy_per_gb: out.sender_energy_j / (total_bytes / 1e9),
            });
        }
        Result { rows }
    }

    /// Render the sweep.
    pub fn render(r: &Result) -> String {
        let mut t = analysis::table::Table::new([
            "senders",
            "aggregate (Gbps)",
            "drops",
            "retx",
            "energy (J/GB)",
        ]);
        for row in &r.rows {
            t.row([
                row.n.to_string(),
                format!("{:.2}", row.aggregate_gbps),
                row.drops.to_string(),
                row.retx.to_string(),
                format!("{:.1}", row.energy_per_gb),
            ]);
        }
        format!(
            "Extension: incast (paper §5)\n\n{t}\n\
             Spreading a fixed aggregate over more synchronized senders\n\
             multiplies burst losses and per-byte energy: each socket idles\n\
             (at 21.49 W) for most of the window — the inverse of the\n\
             paper's consolidation argument.\n"
        )
    }
}

/// §5 — "we invite the community to build a benchmark for a standardized
/// evaluation": the paper's energy methodology applied to the production
/// algorithms it could not measure (Swift, HPCC) alongside the measured
/// reference points.
pub mod modern {
    use super::*;
    use analysis::stats::Summary;

    /// Configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Algorithms to benchmark.
        pub ccas: Vec<CcaKind>,
        /// Bytes per transfer.
        pub bytes: u64,
        /// MTU.
        pub mtu: u32,
        /// Seeds.
        pub seeds: Vec<u64>,
    }

    impl Config {
        /// Default: the two §5 production algorithms plus cubic and bbr
        /// as anchors from the measured set.
        pub fn at_scale(scale: crate::scale::Scale) -> Config {
            Config {
                ccas: vec![CcaKind::Swift, CcaKind::Hpcc, CcaKind::Cubic, CcaKind::Bbr],
                bytes: scale.transfer_bytes / 5,
                mtu: 9000,
                seeds: scale.seeds(),
            }
        }
    }

    /// One algorithm's benchmark row.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Algorithm name.
        pub cca: String,
        /// Energy (J).
        pub energy_j: Summary,
        /// Power (W).
        pub power_w: Summary,
        /// Goodput (Gb/s).
        pub goodput_gbps: Summary,
        /// Retransmissions.
        pub retx: Summary,
    }

    /// The benchmark.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct Result {
        /// One row per algorithm.
        pub rows: Vec<Row>,
    }

    /// Run the benchmark.
    pub fn run(cfg: &Config) -> Result {
        let rows = cfg
            .ccas
            .iter()
            .map(|&cca| {
                let cell = crate::matrix::run_cell(cca, cfg.mtu, cfg.bytes, &cfg.seeds)
                    .unwrap_or_else(|e| panic!("extension cell failed: {e}"));
                Row {
                    cca: cell.cca,
                    energy_j: cell.energy_j,
                    power_w: cell.power_w,
                    goodput_gbps: cell.goodput_gbps,
                    retx: cell.retx,
                }
            })
            .collect();
        Result { rows }
    }

    /// Render the benchmark table.
    pub fn render(r: &Result) -> String {
        let mut t = analysis::table::Table::new([
            "cca",
            "energy (J)",
            "power (W)",
            "goodput (Gbps)",
            "retx",
        ]);
        for row in &r.rows {
            t.row([
                row.cca.clone(),
                format!("{}", row.energy_j),
                format!("{}", row.power_w),
                format!("{:.3}", row.goodput_gbps.mean),
                format!("{:.0}", row.retx.mean),
            ]);
        }
        format!(
            "Extension: the §5 standardized benchmark, including the
             production algorithms the paper could not measure

{t}"
        )
    }
}

/// §5 — "the sorts of workloads used in production data centers":
/// Poisson arrivals of heavy-tailed flows, all multiplexed on one sender
/// host, at a sweep of offered loads. Per-byte energy falls steeply with
/// load — an idle-dominated host is the most expensive place to move a
/// byte — which is the datacenter-scale version of the paper's
/// consolidation argument.
pub mod production {
    use super::*;
    use workload::arrivals::PoissonWorkload;

    /// Configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Offered loads to sweep (fractions of the link rate).
        pub loads: Vec<f64>,
        /// Flows per run.
        pub flows: usize,
        /// MTU.
        pub mtu: u32,
        /// Seed.
        pub seed: u64,
    }

    impl Config {
        /// Default at a given scale.
        pub fn at_scale(scale: crate::scale::Scale) -> Config {
            Config {
                loads: vec![0.2, 0.4, 0.6, 0.8],
                flows: (scale.transfer_bytes / 25_000_000).clamp(40, 400) as usize,
                mtu: 9000,
                seed: 1,
            }
        }
    }

    /// One load level's measurements.
    #[derive(Clone, Copy, Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Offered load (fraction of link rate).
        pub load: f64,
        /// Sender energy per gigabyte moved (J/GB).
        pub energy_per_gb: f64,
        /// Mean flow completion time (ms).
        pub mean_fct_ms: f64,
        /// 99th-percentile flow completion time (ms).
        pub p99_fct_ms: f64,
        /// Measurement window (s).
        pub window_s: f64,
    }

    /// The sweep.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct Result {
        /// One row per offered load.
        pub rows: Vec<Row>,
    }

    /// Run the sweep.
    pub fn run(cfg: &Config) -> Result {
        let mut rows = Vec::new();
        for &load in &cfg.loads {
            let workload = PoissonWorkload::new(load, cfg.flows, CcaKind::Cubic);
            let flows = workload.generate(cfg.seed);
            let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
            let out = workload::scenario::run(
                &Scenario::new(cfg.mtu, flows)
                    .with_seed(cfg.seed)
                    .with_colocated_senders(),
            )
            .expect("production workload completes");
            let fcts: Vec<f64> = out
                .reports
                .iter()
                .map(|r| r.fct.as_secs_f64() * 1000.0)
                .collect();
            let p99 = analysis::stats::percentile(&fcts, 0.99);
            rows.push(Row {
                load,
                energy_per_gb: out.sender_energy_j / (total_bytes as f64 / 1e9),
                mean_fct_ms: analysis::stats::mean(&fcts),
                p99_fct_ms: p99,
                window_s: out.window.as_secs_f64(),
            });
        }
        Result { rows }
    }

    /// Render the sweep.
    pub fn render(r: &Result) -> String {
        let mut t = analysis::table::Table::new([
            "offered load",
            "energy (J/GB)",
            "mean fct (ms)",
            "p99 fct (ms)",
            "window (s)",
        ]);
        for row in &r.rows {
            t.row([
                format!("{:.0}%", row.load * 100.0),
                format!("{:.1}", row.energy_per_gb),
                format!("{:.2}", row.mean_fct_ms),
                format!("{:.2}", row.p99_fct_ms),
                format!("{:.2}", row.window_s),
            ]);
        }
        format!(
            "Extension: production-style workload (paper §5)\n\
             (Poisson arrivals, web-search-like heavy-tailed sizes, all\n\
             flows multiplexed on one sender host)\n\n{t}\n\
             Per-byte energy falls steeply as offered load rises — idle\n\
             time, not transmission, is what costs — until very high load,\n\
             where burst losses and recovery stalls claw part of the gain\n\
             back and tail completion times grow: the energy/latency\n\
             tension the paper's §5 anticipates.\n"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    #[test]
    fn multiplexing_collapses_the_savings() {
        let r = multiplexed::run(&multiplexed::Config {
            per_flow_bytes: 125 * MB,
            mtu: 9000,
            seed: 1,
        });
        assert!(
            r.separate_savings_pct > 10.0,
            "separate sockets save: {:+.2}%",
            r.separate_savings_pct
        );
        assert!(
            r.colocated_savings_pct.abs() < 3.0,
            "colocated savings must collapse: {:+.2}%",
            r.colocated_savings_pct
        );
        assert!(multiplexed::render(&r).contains("collapses"));
    }

    #[test]
    fn srpt_beats_fair_on_both_axes() {
        let b = 50 * MB;
        let r = srpt::run(&srpt::Config {
            flow_bytes: vec![b, 2 * b, 4 * b, 8 * b],
            mtu: 9000,
            seed: 1,
        });
        assert!(
            r.fct_improvement_pct > 10.0,
            "SRPT mean fct must improve: {:+.1}%",
            r.fct_improvement_pct
        );
        assert!(
            r.energy_savings_pct > 1.0,
            "SRPT must save energy: {:+.1}%",
            r.energy_savings_pct
        );
    }

    #[test]
    fn modern_algorithms_benchmark_cleanly() {
        let r = modern::run(&modern::Config {
            ccas: vec![CcaKind::Swift, CcaKind::Hpcc, CcaKind::Cubic],
            bytes: 100 * MB,
            mtu: 9000,
            seeds: vec![1],
        });
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.goodput_gbps.mean > 8.0,
                "{} goodput {:.2}",
                row.cca,
                row.goodput_gbps.mean
            );
            assert!(row.energy_j.mean > 0.0);
        }
        // Swift and HPCC keep queues short: no more retransmissions than
        // cubic's loss-based sawtooth.
        let retx = |name: &str| {
            r.rows
                .iter()
                .find(|x| x.cca == name)
                .expect("row present")
                .retx
                .mean
        };
        assert!(retx("swift") <= retx("cubic"));
        assert!(retx("hpcc") <= retx("cubic"));
        assert!(modern::render(&r).contains("swift"));
    }

    #[test]
    fn production_load_sweep_shows_consolidation_gain() {
        let r = production::run(&production::Config {
            loads: vec![0.2, 0.5],
            flows: 40,
            mtu: 9000,
            seed: 3,
        });
        assert_eq!(r.rows.len(), 2);
        let (lo, hi) = (&r.rows[0], &r.rows[1]);
        assert!(
            hi.energy_per_gb < 0.7 * lo.energy_per_gb,
            "per-byte energy must fall with load: {} vs {}",
            lo.energy_per_gb,
            hi.energy_per_gb
        );
        assert!(
            hi.p99_fct_ms > lo.p99_fct_ms,
            "tail completion must degrade with load"
        );
        assert!(production::render(&r).contains("Poisson"));
    }

    #[test]
    fn incast_degrades_with_fan_in() {
        let r = incast::run(&incast::Config {
            fan_in: vec![2, 16],
            bytes_per_sender: 10 * MB,
            mtu: 9000,
            seed: 1,
        });
        assert_eq!(r.rows.len(), 2);
        let (small, big) = (&r.rows[0], &r.rows[1]);
        assert!(
            big.energy_per_gb > small.energy_per_gb,
            "per-byte energy must grow with fan-in: {} vs {}",
            big.energy_per_gb,
            small.energy_per_gb
        );
        assert!(big.retx >= small.retx, "incast bursts lose more");
    }
}
