//! **Figure 2 / §4.1** — sender power vs. throughput.
//!
//! One CUBIC flow is throttled to each target rate ("sending smoothly")
//! and its average power measured. The curve is strictly concave; the
//! straight chord between idle and line rate is the power of the "full
//! speed, then idle" time-sharing, which lies strictly below the curve —
//! the geometric heart of the paper's argument.

use crate::scale::Scale;
use analysis::stats::Summary;
use cca::CcaKind;
use energy::calibration::P_IDLE_W;
use netsim::units::Rate;
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// Configuration of the power-curve sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Target throughputs in Gb/s (0 rows are reported analytically as
    /// idle power; the line-rate row runs unthrottled).
    pub rates_gbps: Vec<f64>,
    /// Nominal duration of each throttled transfer; sets the byte count
    /// as `rate * duration`.
    pub duration_s: f64,
    /// MTU.
    pub mtu: u32,
    /// Seeds.
    pub seeds: Vec<u64>,
    /// Background compute load (Figure 4 reuses this at >0 loads).
    pub background: StressLoad,
}

impl Config {
    /// The paper's sweep at the given scale: 0.5 Gb/s steps.
    pub fn at_scale(scale: Scale) -> Config {
        let duration = (scale.two_flow_bytes as f64 * 8.0 / 10e9).max(0.2);
        Config {
            rates_gbps: (1..=20).map(|i| i as f64 * 0.5).collect(),
            duration_s: duration,
            mtu: 9000,
            seeds: scale.seeds(),
            background: StressLoad::IDLE,
        }
    }
}

/// One measured point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Point {
    /// The throttle target (Gb/s).
    pub target_gbps: f64,
    /// Achieved goodput (Gb/s).
    pub goodput_gbps: Summary,
    /// Average sender power while active (W).
    pub power_w: Summary,
    /// Power of the equivalent "full speed, then idle" mix with the same
    /// average throughput (the orange tangent line of Figure 2).
    pub mix_power_w: f64,
}

/// The sweep result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// Idle power (the x = 0 point).
    pub idle_w: f64,
    /// Line-rate power (the x = 10 point), used for the mix line.
    pub line_rate_w: f64,
    /// Points ordered by target rate.
    pub points: Vec<Point>,
}

impl Result {
    /// Verify strict concavity of the measured curve (midpoints above
    /// chords), allowing `tol` Watts of measurement noise.
    pub fn is_concave(&self, tol: f64) -> bool {
        let pts: Vec<(f64, f64)> = std::iter::once((0.0, self.idle_w))
            .chain(self.points.iter().map(|p| (p.target_gbps, p.power_w.mean)))
            .collect();
        for w in pts.windows(3) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (x2, y2) = w[2];
            let chord = y0 + (y2 - y0) * (x1 - x0) / (x2 - x0);
            if y1 + tol < chord {
                return false;
            }
        }
        true
    }
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Result {
    let mut points = Vec::with_capacity(cfg.rates_gbps.len());
    for &rate in &cfg.rates_gbps {
        assert!(rate > 0.0, "zero rate is the analytic idle point");
        let bytes = ((rate * 1e9 / 8.0) * cfg.duration_s) as u64;
        let mut power = Vec::new();
        let mut goodput = Vec::new();
        for &seed in &cfg.seeds {
            // Every point is a *throttled* run — "sending smoothly at a
            // certain throughput" (§4.1) — including the line-rate one;
            // an unthrottled CUBIC flow would add loss-recovery noise that
            // belongs to Figures 5-8, not to this curve.
            let spec = FlowSpec::bulk(CcaKind::Cubic, bytes.max(10_000_000))
                .with_rate_limit(Rate::from_gbps(rate));
            let scenario = Scenario::new(cfg.mtu, vec![spec])
                .with_seed(seed)
                .with_background_load(cfg.background);
            let out = workload::scenario::run(&scenario).expect("throttled flow completes");
            power.push(out.average_sender_power_w());
            goodput.push(out.reports[0].mean_goodput.gbps());
        }
        points.push(Point {
            target_gbps: rate,
            goodput_gbps: Summary::of(&goodput),
            power_w: Summary::of(&power),
            mix_power_w: 0.0, // filled below once line-rate power is known
        });
    }

    let fan = energy::calibration::reference_fan();
    let idle_w = P_IDLE_W + fan.watts(cfg.background.utilization());
    let line_rate_w = points.last().map(|p| p.power_w.mean).unwrap_or(idle_w);
    let max_rate = points.last().map(|p| p.target_gbps).unwrap_or(10.0);
    for p in &mut points {
        let duty = (p.target_gbps / max_rate).clamp(0.0, 1.0);
        p.mix_power_w = duty * line_rate_w + (1.0 - duty) * idle_w;
    }

    Result {
        idle_w,
        line_rate_w,
        points,
    }
}

/// Render the paper-style series.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new([
        "target (Gbps)",
        "achieved (Gbps)",
        "smooth power (W)",
        "full-speed-then-idle (W)",
    ]);
    t.row([
        "0.0".to_string(),
        "0.000".to_string(),
        format!("{:.2}", result.idle_w),
        format!("{:.2}", result.idle_w),
    ]);
    for p in &result.points {
        t.row([
            format!("{:.1}", p.target_gbps),
            format!("{:.3}", p.goodput_gbps.mean),
            format!("{}", p.power_w),
            format!("{:.2}", p.mix_power_w),
        ]);
    }
    let smooth: Vec<(f64, f64)> = std::iter::once((0.0, result.idle_w))
        .chain(
            result
                .points
                .iter()
                .map(|p| (p.target_gbps, p.power_w.mean)),
        )
        .collect();
    let mix: Vec<(f64, f64)> = std::iter::once((0.0, result.idle_w))
        .chain(result.points.iter().map(|p| (p.target_gbps, p.mix_power_w)))
        .collect();
    let chart = analysis::chart::line_chart(
        &[
            ("sending smoothly", &smooth),
            ("full speed, then idle", &mix),
        ],
        60,
        14,
    );
    format!(
        "Figure 2 — power vs throughput for a CUBIC sender\n\
         (paper: strictly concave; 21.49 W idle, 34.23 W @5G, 35.82 W @10G;\n\
         the time-shared mix lies on the chord, below the curve)\n\n{t}\n{chart}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            rates_gbps: vec![2.5, 5.0, 7.5, 10.0],
            duration_s: 0.1,
            mtu: 9000,
            seeds: vec![1],
            background: StressLoad::IDLE,
        }
    }

    #[test]
    fn hits_the_calibrated_operating_points() {
        let r = run(&tiny());
        assert!((r.idle_w - 21.49).abs() < 1e-9);
        let p5 = &r.points[1];
        assert!(
            (p5.power_w.mean - 34.23).abs() < 0.5,
            "P(5G) = {:?}",
            p5.power_w
        );
        let p10 = &r.points[3];
        assert!(
            (p10.power_w.mean - 35.82).abs() < 0.8,
            "P(10G) = {:?}",
            p10.power_w
        );
    }

    #[test]
    fn curve_is_concave_and_above_the_mix_line() {
        let r = run(&tiny());
        assert!(r.is_concave(0.3), "measured curve must be concave");
        for p in &r.points[..r.points.len() - 1] {
            assert!(
                p.power_w.mean > p.mix_power_w,
                "smooth {} W must exceed mix {} W at {} Gbps",
                p.power_w.mean,
                p.mix_power_w,
                p.target_gbps
            );
        }
    }

    #[test]
    fn achieved_tracks_target() {
        let r = run(&tiny());
        for p in &r.points {
            assert!(
                (p.goodput_gbps.mean - p.target_gbps).abs() / p.target_gbps < 0.1,
                "target {} vs achieved {:?}",
                p.target_gbps,
                p.goodput_gbps
            );
        }
    }

    #[test]
    fn render_contains_the_idle_row() {
        let r = run(&tiny());
        let s = render(&r);
        assert!(s.contains("21.49"));
        assert!(s.contains("Figure 2"));
    }
}
