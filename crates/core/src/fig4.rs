//! **Figure 4 / §4.2** — power vs. bitrate under background compute load,
//! and the fate of the "full speed, then idle" savings on loaded hosts.
//!
//! The paper runs `stress` on 0/25/50/75% of the cores next to the CUBIC
//! traffic. Loaded hosts draw far more base power and the *marginal*
//! network power shrinks, so the unfairness savings fall from ~16% (idle)
//! to ~1% at 25% load and ~0.17% at 75% load — still worth ~$10M/year at
//! datacenter scale.

use crate::scale::Scale;
use crate::{fig1, fig2};
use analysis::stats::Summary;
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// Configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Background load fractions (the paper's 0, 0.25, 0.5, 0.75).
    pub loads: Vec<f64>,
    /// Rates for the per-load power curves (Gb/s).
    pub rates_gbps: Vec<f64>,
    /// Bytes per flow for the savings experiment.
    pub per_flow_bytes: u64,
    /// Nominal duration for the curve transfers.
    pub duration_s: f64,
    /// MTU.
    pub mtu: u32,
    /// Seeds.
    pub seeds: Vec<u64>,
}

impl Config {
    /// The paper's configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Config {
        Config {
            loads: vec![0.0, 0.25, 0.5, 0.75],
            rates_gbps: vec![2.0, 4.0, 6.0, 8.0, 10.0],
            per_flow_bytes: scale.two_flow_bytes,
            duration_s: (scale.two_flow_bytes as f64 * 8.0 / 10e9).max(0.2),
            mtu: 9000,
            seeds: scale.seeds(),
        }
    }
}

/// One load level's measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadRow {
    /// Background utilization.
    pub load: f64,
    /// Idle (zero-bitrate) power at this load (W).
    pub idle_w: f64,
    /// Power at each configured bitrate (W).
    pub power_w: Vec<Summary>,
    /// "Full speed, then idle" savings over fair at this load (%).
    pub savings_pct: Summary,
}

/// The full result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// Bitrates the curves were sampled at.
    pub rates_gbps: Vec<f64>,
    /// One row per load level.
    pub rows: Vec<LoadRow>,
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Result {
    let mut rows = Vec::with_capacity(cfg.loads.len());
    for &load in &cfg.loads {
        let background = StressLoad::fraction(load);

        // Power curve at this load (reuses the Figure-2 machinery).
        let curve = fig2::run(&fig2::Config {
            rates_gbps: cfg.rates_gbps.clone(),
            duration_s: cfg.duration_s,
            mtu: cfg.mtu,
            seeds: cfg.seeds.clone(),
            background,
        });

        // Fair-vs-serial savings at this load (reuses Figure 1's
        // endpoints only).
        let sweep = fig1::run(&fig1::Config {
            per_flow_bytes: cfg.per_flow_bytes,
            mtu: cfg.mtu,
            fractions: vec![],
            seeds: cfg.seeds.clone(),
            background,
        });
        let serial = sweep
            .points
            .iter()
            .find(|p| p.fraction == 1.0)
            .expect("serial point present");

        rows.push(LoadRow {
            load,
            idle_w: curve.idle_w,
            power_w: curve.points.iter().map(|p| p.power_w).collect(),
            savings_pct: serial.savings_pct,
        });
    }
    Result {
        rates_gbps: cfg.rates_gbps.clone(),
        rows,
    }
}

/// Render the paper-style table.
pub fn render(result: &Result) -> String {
    let mut header = vec!["load (%)".to_string(), "idle (W)".to_string()];
    header.extend(result.rates_gbps.iter().map(|r| format!("{r:.0}G (W)")));
    header.push("fs-then-idle savings (%)".to_string());
    let mut t = analysis::table::Table::new(header);
    for row in &result.rows {
        let mut cells = vec![
            format!("{:.0}", row.load * 100.0),
            format!("{:.2}", row.idle_w),
        ];
        cells.extend(row.power_w.iter().map(|p| format!("{:.2}", p.mean)));
        cells.push(format!("{}", row.savings_pct));
        t.row(cells);
    }
    format!(
        "Figure 4 — power vs bitrate under background load + unfairness savings\n\
         (paper: savings fall from ~16% idle to ~1% at 25% load and ~0.17% at 75%)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    fn tiny() -> Config {
        Config {
            loads: vec![0.0, 0.25, 0.75],
            rates_gbps: vec![5.0, 10.0],
            per_flow_bytes: 125 * MB,
            duration_s: 0.1,
            mtu: 9000,
            seeds: vec![1],
        }
    }

    #[test]
    fn savings_shrink_with_load_toward_paper_values() {
        let r = run(&tiny());
        let s0 = r.rows[0].savings_pct.mean;
        let s25 = r.rows[1].savings_pct.mean;
        let s75 = r.rows[2].savings_pct.mean;
        assert!(s0 > s25 && s25 > s75, "savings must fall: {s0} {s25} {s75}");
        assert!((12.0..20.0).contains(&s0), "idle savings {s0} ~ 16%");
        assert!((0.5..2.0).contains(&s25), "25% load savings {s25} ~ 1%");
        assert!((0.05..0.5).contains(&s75), "75% load savings {s75} ~ 0.17%");
    }

    #[test]
    fn loaded_hosts_draw_more_base_power() {
        let r = run(&tiny());
        assert!((r.rows[0].idle_w - 21.49).abs() < 1e-9);
        assert!(
            r.rows[1].idle_w > 60.0,
            "25% load base {}",
            r.rows[1].idle_w
        );
        assert!(
            r.rows[2].idle_w > 110.0,
            "75% load base {}",
            r.rows[2].idle_w
        );
        // And the network increment compresses with load.
        let inc0 = r.rows[0].power_w[1].mean - r.rows[0].idle_w;
        let inc75 = r.rows[2].power_w[1].mean - r.rows[2].idle_w;
        assert!(
            inc75 < inc0 * 0.2,
            "marginal power must attenuate: {inc0} vs {inc75}"
        );
    }

    #[test]
    fn render_lists_all_loads() {
        let r = run(&tiny());
        let s = render(&r);
        assert!(s.contains("Figure 4"));
        for load in ["0", "25", "75"] {
            assert!(s.contains(load));
        }
    }
}
