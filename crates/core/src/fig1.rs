//! **Figure 1 / §4.1** — energy savings vs. bandwidth allocation.
//!
//! Two CUBIC flows share the 10 Gb/s bottleneck, each moving 10 Gbit.
//! One flow is throttled so the other receives a chosen fraction of the
//! link; at the extremes the flows run back-to-back at line rate ("full
//! speed, then idle"). Total sender energy is measured from experiment
//! start until both flows complete. The paper finds the fair 50/50 split
//! is the *most* expensive allocation and full unfairness saves ~16%.

use crate::scale::Scale;
use analysis::stats::Summary;
use cca::CcaKind;
use netsim::units::Rate;
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// Configuration of the unfairness sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bytes per flow (the paper's 10 Gbit = 1.25 GB).
    pub per_flow_bytes: u64,
    /// MTU (the paper's experiments run at 9000).
    pub mtu: u32,
    /// Fractions of bandwidth allocated to the favoured flow, in
    /// `(0.5, 1.0)` exclusive; 0.5 (fair) and 1.0 (serial) always run.
    pub fractions: Vec<f64>,
    /// Seeds (one run per seed per point).
    pub seeds: Vec<u64>,
    /// Background load on both sender hosts (0 for Figure 1; Figure 4
    /// reuses this experiment at higher loads).
    pub background: StressLoad,
}

impl Config {
    /// The paper's configuration at the given scale.
    pub fn at_scale(scale: Scale) -> Config {
        Config {
            per_flow_bytes: scale.two_flow_bytes,
            mtu: 9000,
            fractions: (11..20).map(|i| i as f64 * 0.05).collect(), // 0.55..0.95
            seeds: scale.seeds(),
            background: StressLoad::IDLE,
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Point {
    /// Fraction of bandwidth allocated to flow #1 (the x-axis).
    pub fraction: f64,
    /// Total sender energy until both flows complete (J).
    pub energy_j: Summary,
    /// Savings over the fair allocation (%).
    pub savings_pct: Summary,
    /// Nominal Jain fairness index of the allocation.
    pub jain: f64,
    /// Mean measurement window (s).
    pub window_s: Summary,
}

/// The sweep result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// Energy of the fair allocation (J).
    pub fair_energy_j: Summary,
    /// Sweep points including the mirrored lower half and both serial
    /// extremes, ordered by fraction.
    pub points: Vec<Point>,
    /// Peak savings over fair (%), i.e. the paper's headline ~16%.
    pub peak_savings_pct: f64,
}

fn fair_scenario(cfg: &Config, seed: u64) -> Scenario {
    Scenario::new(
        cfg.mtu,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
        ],
    )
    .with_seed(seed)
    .with_background_load(cfg.background)
}

/// Throttled scenario realizing the allocation `(f, 1-f)`: flow #1 is
/// capped at `f*C` and flow #2 at `(1-f)*C` — the caps sum to the link
/// rate, so the allocation is stable (the paper's deep-buffered testbed
/// achieves the same stability; on a shallow buffer an *uncapped*
/// competitor would push both flows back to the fair share through loss).
/// When flow #1 completes, flow #2's cap lifts and it takes the full
/// link, keeping the aggregate at `C` for the whole experiment.
fn throttled_scenario(cfg: &Config, fraction: f64, seed: u64) -> Scenario {
    let mss = (cfg.mtu - netsim::packet::HEADER_BYTES) as f64;
    let wire_factor = cfg.mtu as f64 / mss;
    let flow1_done_s = cfg.per_flow_bytes as f64 * wire_factor * 8.0 / (fraction * 10e9);
    Scenario::new(
        cfg.mtu,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)
                .with_rate_limit(Rate::from_gbps(10.0 * fraction)),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)
                .with_rate_limit(Rate::from_gbps(10.0 * (1.0 - fraction)))
                .with_rate_change(netsim::time::SimTime::from_secs_f64(flow1_done_s), None),
        ],
    )
    .with_seed(seed)
    .with_background_load(cfg.background)
}

/// Serial schedule: flow #1 alone at line rate, then flow #2. The second
/// flow's start is the measured solo completion time of the first (a
/// two-phase deterministic construction).
fn serial_scenario(cfg: &Config, seed: u64) -> Scenario {
    let solo = Scenario::new(
        cfg.mtu,
        vec![FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)],
    )
    .with_seed(seed);
    let solo_fct = workload::scenario::run(&solo)
        .expect("solo flow completes")
        .reports[0]
        .completed_at;
    Scenario::new(
        cfg.mtu,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes),
            FlowSpec::bulk(CcaKind::Cubic, cfg.per_flow_bytes)
                .with_start_delay(solo_fct.saturating_since(netsim::time::SimTime::ZERO)),
        ],
    )
    .with_seed(seed)
    .with_background_load(cfg.background)
}

struct RawPoint {
    fraction: f64,
    energy: Vec<f64>,
    window: Vec<f64>,
}

fn measure(scenarios: impl Iterator<Item = Scenario>, fraction: f64) -> RawPoint {
    let mut energy = Vec::new();
    let mut window = Vec::new();
    for s in scenarios {
        let out = workload::scenario::run(&s).expect("two-flow scenario completes");
        energy.push(out.sender_energy_j);
        window.push(out.window.as_secs_f64());
    }
    RawPoint {
        fraction,
        energy,
        window,
    }
}

/// Extend every point's energy to a per-seed *common* measurement window
/// (the latest completion across all schedules of that seed). A completed
/// host idles at exactly base power, so the extension is the analytic
/// `(W - w) * P_base` per host — this removes completion-jitter noise
/// from the savings comparison without rerunning anything.
fn equalize_windows(raw: &mut [RawPoint], cfg: &Config, hosts: f64) {
    let fan = energy::calibration::reference_fan();
    let base_w = energy::calibration::P_IDLE_W + fan.watts(cfg.background.utilization());
    let seeds = cfg.seeds.len();
    for i in 0..seeds {
        let common = raw.iter().map(|rp| rp.window[i]).fold(0.0_f64, f64::max);
        for rp in raw.iter_mut() {
            rp.energy[i] += (common - rp.window[i]) * base_w * hosts;
            rp.window[i] = common;
        }
    }
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Result {
    let fair = measure(cfg.seeds.iter().map(|&s| fair_scenario(cfg, s)), 0.5);
    let serial = measure(cfg.seeds.iter().map(|&s| serial_scenario(cfg, s)), 1.0);

    let mut raw = vec![fair, serial];
    for &f in &cfg.fractions {
        assert!(
            f > 0.5 && f < 1.0,
            "sweep fractions must lie strictly between fair and serial"
        );
        raw.push(measure(
            cfg.seeds.iter().map(|&s| throttled_scenario(cfg, f, s)),
            f,
        ));
    }
    equalize_windows(&mut raw, cfg, 2.0);

    let fair_energy: Vec<f64> = raw[0].energy.clone();
    let to_point = |rp: &RawPoint| -> Point {
        let savings: Vec<f64> = rp
            .energy
            .iter()
            .zip(&fair_energy)
            .map(|(e, fe)| 100.0 * (fe - e) / fe)
            .collect();
        Point {
            fraction: rp.fraction,
            energy_j: Summary::of(&rp.energy),
            savings_pct: Summary::of(&savings),
            jain: analysis::fairness::jain_index(&[rp.fraction, 1.0 - rp.fraction]),
            window_s: Summary::of(&rp.window),
        }
    };

    // Mirror the upper half onto the lower half (host symmetry).
    let mut points: Vec<Point> = Vec::new();
    for rp in &raw {
        let p = to_point(rp);
        if rp.fraction > 0.5 {
            let mut mirrored = p.clone();
            mirrored.fraction = 1.0 - p.fraction;
            points.push(mirrored);
        }
        points.push(p);
    }
    points.sort_by(|a, b| a.fraction.total_cmp(&b.fraction));

    let peak = points
        .iter()
        .map(|p| p.savings_pct.mean)
        .fold(f64::NEG_INFINITY, f64::max);

    Result {
        fair_energy_j: to_point(&raw[0]).energy_j,
        points,
        peak_savings_pct: peak,
    }
}

/// Render the paper-style series.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new([
        "flow1 fraction (%)",
        "jain",
        "energy (J)",
        "savings over fair (%)",
        "window (s)",
    ]);
    for p in &result.points {
        t.row([
            format!("{:.0}", p.fraction * 100.0),
            format!("{:.3}", p.jain),
            format!("{}", p.energy_j),
            format!("{}", p.savings_pct),
            format!("{}", p.window_s),
        ]);
    }
    let bowl: Vec<(f64, f64)> = result
        .points
        .iter()
        .map(|p| (p.fraction * 100.0, p.savings_pct.mean))
        .collect();
    let chart = analysis::chart::line_chart(&[("savings over fair (%)", &bowl)], 60, 12);
    format!(
        "Figure 1 — energy savings vs bandwidth allocated to flow #1\n\
         (two CUBIC flows, 10 Gb/s bottleneck; paper: fair is worst, full\n\
         speed-then-idle saves ~16%)\n\n{t}\n{chart}\npeak savings: {:.1}%\n",
        result.peak_savings_pct
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    fn tiny_config() -> Config {
        Config {
            per_flow_bytes: 125 * MB, // 1 Gbit
            mtu: 9000,
            fractions: vec![0.75],
            seeds: vec![1],
            background: StressLoad::IDLE,
        }
    }

    #[test]
    fn fair_is_least_efficient_and_serial_saves_most() {
        let result = run(&tiny_config());
        let fair = result
            .points
            .iter()
            .find(|p| p.fraction == 0.5)
            .expect("fair point present");
        let serial = result
            .points
            .iter()
            .find(|p| p.fraction == 1.0)
            .expect("serial point present");
        let mid = result
            .points
            .iter()
            .find(|p| p.fraction == 0.75)
            .expect("mid point present");

        assert!(fair.savings_pct.mean.abs() < 1e-9, "fair is the reference");
        assert!(
            mid.savings_pct.mean > 1.0,
            "0.75 allocation must save: {:?}",
            mid.savings_pct
        );
        assert!(
            serial.savings_pct.mean > mid.savings_pct.mean,
            "serial ({:?}) must beat 0.75 ({:?})",
            serial.savings_pct,
            mid.savings_pct
        );
        // The headline: around 16% at full unfairness.
        assert!(
            (12.0..20.0).contains(&serial.savings_pct.mean),
            "serial savings {:?} should be near the paper's 16%",
            serial.savings_pct
        );
        assert_eq!(result.peak_savings_pct, serial.savings_pct.mean);
    }

    #[test]
    fn points_are_mirrored_and_sorted() {
        let result = run(&tiny_config());
        let fracs: Vec<f64> = result.points.iter().map(|p| p.fraction).collect();
        assert_eq!(fracs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let low = &result.points[1];
        let high = &result.points[3];
        assert_eq!(low.energy_j, high.energy_j, "mirrored energies identical");
    }

    #[test]
    fn render_mentions_the_peak() {
        let result = run(&tiny_config());
        let s = render(&result);
        assert!(s.contains("Figure 1"));
        assert!(s.contains("peak savings"));
    }
}
