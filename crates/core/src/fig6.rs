//! **Figure 6 / §4.3** — average *power* per CCA, and the
//! energy-vs-power anticorrelation.
//!
//! The paper's twist: the ordering by power differs drastically from the
//! ordering by energy — the correlation between total energy and average
//! power is ≈ **-0.8**. Hosts that draw less power per second (the BBR2
//! alpha, the baseline) take so much longer that they spend more energy
//! in total; "hosts may spend less energy per unit of time, but take
//! longer to complete and end up spending more energy in total".

use crate::matrix::{Matrix, MTUS};
use serde::{Deserialize, Serialize};

/// Figure-6 projection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// The underlying campaign.
    pub matrix: Matrix,
    /// Pearson correlation of energy vs power across CCAs at MTU 1500 —
    /// the configuration whose ordering the paper's §4.3 text discusses
    /// (the paper reports ≈ -0.8). Negative because the slow, low-power
    /// outliers (bbr2, baseline) dominate total energy.
    pub energy_power_correlation: f64,
    /// The same correlation across every cell of the campaign (mixes the
    /// MTU effect, which is positively correlated, into the CCA effect).
    pub correlation_all_cells: f64,
    /// Max/min power ratio across CCAs at MTU 1500 (the paper's "about
    /// 14%" spread corresponds to a ratio of ~1.14).
    pub power_spread_1500: f64,
}

/// Project the campaign into Figure 6.
pub fn from_matrix(matrix: Matrix) -> Result {
    let energies: Vec<f64> = matrix.cells.iter().map(|c| c.energy_j.mean).collect();
    let powers: Vec<f64> = matrix.cells.iter().map(|c| c.power_w.mean).collect();
    let correlation_all_cells = analysis::stats::pearson(&energies, &powers);

    let cells_1500 = matrix.at_mtu(1500);
    let e1500: Vec<f64> = cells_1500.iter().map(|c| c.energy_j.mean).collect();
    let p1500: Vec<f64> = cells_1500.iter().map(|c| c.power_w.mean).collect();
    let corr = analysis::stats::pearson(&e1500, &p1500);

    let at_1500: Vec<f64> = p1500.clone();
    let spread = if at_1500.is_empty() {
        1.0
    } else {
        let max = at_1500.iter().cloned().fold(f64::MIN, f64::max);
        let min = at_1500.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };

    Result {
        matrix,
        energy_power_correlation: corr,
        correlation_all_cells,
        power_spread_1500: spread,
    }
}

/// Run the campaign and project it.
pub fn run(scale: crate::scale::Scale) -> Result {
    from_matrix(crate::matrix::run_matrix(scale))
}

/// Render the paper-style grouped bars as a table.
pub fn render(result: &Result) -> String {
    let mut header = vec!["cca".to_string()];
    header.extend(MTUS.iter().map(|m| format!("P@{m} (W)")));
    let mut t = analysis::table::Table::new(header);
    for cca in crate::fig5::kinds_in(&result.matrix) {
        let mut row = vec![cca.name().to_string()];
        for mtu in MTUS {
            let cell = result.matrix.cell(cca, mtu).expect("cell");
            row.push(format!(
                "{:.2} ± {:.2}",
                cell.power_w.mean, cell.power_w.std
            ));
        }
        t.row(row);
    }
    format!(
        "Figure 6 — rate of energy consumption (power) per CCA\n\n{t}\n\
         energy-vs-power correlation across CCAs at MTU 1500: {:.2} (paper: -0.8)\n\
         same correlation across all cells (MTU effect included): {:.2}\n\
         CCA power spread at MTU 1500: {:.1}% (paper: ~14%)\n",
        result.energy_power_correlation,
        result.correlation_all_cells,
        (result.power_spread_1500 - 1.0) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_cell;
    use cca::CcaKind;
    use netsim::units::MB;

    fn mini_matrix() -> Matrix {
        let seeds = [1u64];
        let bytes = 250 * MB;
        let mut cells = Vec::new();
        for cca in [
            CcaKind::Bbr,
            CcaKind::Cubic,
            CcaKind::Baseline,
            CcaKind::Bbr2,
        ] {
            for mtu in MTUS {
                cells.push(run_cell(cca, mtu, bytes, &seeds).expect("cell completes"));
            }
        }
        Matrix {
            schema_version: crate::matrix::MATRIX_SCHEMA_VERSION,
            transfer_bytes: bytes,
            repetitions: 1,
            seeds: seeds.to_vec(),
            cells,
            failed: Vec::new(),
        }
    }

    #[test]
    fn energy_and_power_anticorrelate_at_mtu_1500() {
        // At MTU 1500 the slow, low-power outlier (the bbr2 alpha)
        // dominates total energy while fast bbr draws the most power:
        // the correlation must be negative, as in the paper's §4.3.
        let r = from_matrix(mini_matrix());
        assert!(
            r.energy_power_correlation < -0.3,
            "energy/power correlation at 1500 should be negative: {:.2}",
            r.energy_power_correlation
        );
    }

    #[test]
    fn render_reports_the_correlation() {
        let r = from_matrix(mini_matrix());
        let s = render(&r);
        assert!(s.contains("Figure 6"));
        assert!(s.contains("correlation"));
    }
}
