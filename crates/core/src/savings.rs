//! **§4.2's dollar extrapolation** — what a small relative saving means
//! at datacenter scale.
//!
//! "The energy to run a typical data center rack is on the order of
//! $10k/year. With around 100k racks in a typical data center, a 1%
//! improvement corresponds to a cost savings of on the order of
//! $10 million/year."

use serde::{Deserialize, Serialize};

/// The datacenter cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DatacenterModel {
    /// Racks in the datacenter (the paper cites ~100k).
    pub racks: u64,
    /// Energy cost per rack per year in dollars (the paper cites ~$10k).
    pub dollars_per_rack_year: f64,
}

impl DatacenterModel {
    /// The paper's reference datacenter.
    pub fn paper() -> Self {
        DatacenterModel {
            racks: 100_000,
            dollars_per_rack_year: 10_000.0,
        }
    }

    /// Total annual energy spend.
    pub fn annual_energy_dollars(&self) -> f64 {
        self.racks as f64 * self.dollars_per_rack_year
    }

    /// Annual dollars saved by a fractional energy reduction.
    pub fn annual_savings_dollars(&self, saving_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&saving_fraction));
        self.annual_energy_dollars() * saving_fraction
    }
}

/// Render the paper's worked example alongside measured savings levels.
pub fn render(measured_savings: &[(String, f64)]) -> String {
    let dc = DatacenterModel::paper();
    let mut t = analysis::table::Table::new(["scenario", "saving", "$/year"]);
    for (label, frac) in measured_savings {
        t.row([
            label.clone(),
            format!("{:.2}%", frac * 100.0),
            format!("${:.1}M", dc.annual_savings_dollars(*frac) / 1e6),
        ]);
    }
    format!(
        "§4.2 extrapolation — {} racks at ${:.0}k/rack/year\n\n{t}\n\
         (paper: a 1% improvement ~ $10M/year)\n",
        dc.racks,
        dc.dollars_per_rack_year / 1000.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        let dc = DatacenterModel::paper();
        assert_eq!(dc.annual_energy_dollars(), 1e9);
        assert_eq!(dc.annual_savings_dollars(0.01), 10e6);
    }

    #[test]
    fn render_shows_10m_for_one_percent() {
        let s = render(&[("25% load".to_string(), 0.01)]);
        assert!(s.contains("$10.0M"), "{s}");
    }

    #[test]
    #[should_panic]
    fn silly_fractions_are_rejected() {
        DatacenterModel::paper().annual_savings_dollars(1.5);
    }
}
