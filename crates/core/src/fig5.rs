//! **Figure 5 / §4.3-4.4** — total energy per CCA to transmit the test
//! volume, across MTUs.
//!
//! The paper's findings: (a) every algorithm except the BBR2 alpha uses
//! 8.2-14.2% *less* energy than the no-CC baseline; (b) raising the MTU
//! from 1500 to 9000 cuts energy by 13.4-31.9%; (c) the BBR versions
//! differ by ~40%.

use crate::matrix::{Matrix, MTUS};
use cca::CcaKind;
use serde::{Deserialize, Serialize};

/// Figure-5 projection of the campaign matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// The underlying campaign.
    pub matrix: Matrix,
    /// Per-CCA energy saving of MTU 9000 over MTU 1500 (%), the §4.4
    /// claim (13.4-31.9% in the paper).
    pub mtu_savings_pct: Vec<(String, f64)>,
    /// Per-CCA energy relative to the baseline at MTU 9000 (%, negative
    /// means cheaper than baseline) — the §4.3 claim.
    pub vs_baseline_pct: Vec<(String, f64)>,
    /// Energy ratio bbr2 / bbr at MTU 9000 (the ~1.4x version gap).
    pub bbr2_over_bbr: f64,
}

/// The algorithms present in a campaign, in registry (Figure 5) order.
pub fn kinds_in(matrix: &Matrix) -> Vec<CcaKind> {
    CcaKind::ALL
        .into_iter()
        .filter(|&k| matrix.cell(k, 9000).is_some())
        .collect()
}

/// Project the campaign into Figure 5.
pub fn from_matrix(matrix: Matrix) -> Result {
    let kinds = kinds_in(&matrix);
    let energy = |cca: CcaKind, mtu: u32| -> f64 {
        matrix
            .cell(cca, mtu)
            .expect("campaign covers all cells")
            .energy_j
            .mean
    };

    let mtu_savings_pct = kinds
        .iter()
        .map(|&k| {
            let e1500 = energy(k, 1500);
            let e9000 = energy(k, 9000);
            (k.name().to_string(), 100.0 * (e1500 - e9000) / e1500)
        })
        .collect();

    let base = energy(CcaKind::Baseline, 9000);
    let vs_baseline_pct = kinds
        .iter()
        .filter(|&&k| k != CcaKind::Baseline)
        .map(|&k| {
            let e = energy(k, 9000);
            (k.name().to_string(), 100.0 * (e - base) / base)
        })
        .collect();

    let bbr2_over_bbr = energy(CcaKind::Bbr2, 9000) / energy(CcaKind::Bbr, 9000);

    Result {
        matrix,
        mtu_savings_pct,
        vs_baseline_pct,
        bbr2_over_bbr,
    }
}

/// Run the campaign and project it.
pub fn run(scale: crate::scale::Scale) -> Result {
    from_matrix(crate::matrix::run_matrix(scale))
}

/// Render the paper-style grouped bars as a table (kJ, scaled to the
/// paper's 50 GB for comparability).
pub fn render(result: &Result) -> String {
    let factor = (50.0 * 1e9) / result.matrix.transfer_bytes as f64;
    let mut header = vec!["cca".to_string()];
    header.extend(MTUS.iter().map(|m| format!("E@{m} (kJ/50GB)")));
    let mut t = analysis::table::Table::new(header);
    for cca in kinds_in(&result.matrix) {
        let mut row = vec![cca.name().to_string()];
        for mtu in MTUS {
            let cell = result.matrix.cell(cca, mtu).expect("cell");
            row.push(format!(
                "{:.3} ± {:.3}",
                cell.energy_j.mean * factor / 1000.0,
                cell.energy_j.std * factor / 1000.0
            ));
        }
        t.row(row);
    }
    let mut out = format!(
        "Figure 5 — average energy per CCA to transmit 50 GB (scaled from {} GB runs)\n\n{t}\n",
        result.matrix.transfer_bytes as f64 / 1e9
    );
    out.push_str("\nMTU 1500 -> 9000 energy savings (paper: 13.4%..31.9%):\n");
    for (name, pct) in &result.mtu_savings_pct {
        out.push_str(&format!("  {name:>10}: {pct:5.1}%\n"));
    }
    out.push_str("\nEnergy vs baseline at MTU 9000 (paper: CCAs 8.2-14.2% below, bbr2 above):\n");
    for (name, pct) in &result.vs_baseline_pct {
        out.push_str(&format!("  {name:>10}: {pct:+5.1}%\n"));
    }
    out.push_str(&format!(
        "\nbbr2 / bbr energy ratio at MTU 9000: {:.2} (paper: ~1.4)\n",
        result.bbr2_over_bbr
    ));
    let bars: Vec<(String, f64)> = kinds_in(&result.matrix)
        .into_iter()
        .map(|k| {
            let cell = result.matrix.cell(k, 1500).expect("cell");
            (k.name().to_string(), cell.energy_j.mean * factor / 1000.0)
        })
        .collect();
    out.push_str("\nEnergy at MTU 1500 (kJ per 50 GB):\n");
    out.push_str(&analysis::chart::bar_chart(&bars, 44, "kJ"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_cell;
    use netsim::units::MB;

    /// A miniature two-MTU, four-CCA campaign for fast assertions.
    fn mini_matrix() -> Matrix {
        let seeds = [1u64];
        let bytes = 250 * MB;
        let mut cells = Vec::new();
        for cca in [
            CcaKind::Bbr,
            CcaKind::Cubic,
            CcaKind::Baseline,
            CcaKind::Bbr2,
        ] {
            for mtu in MTUS {
                cells.push(run_cell(cca, mtu, bytes, &seeds).expect("cell completes"));
            }
        }
        Matrix {
            schema_version: crate::matrix::MATRIX_SCHEMA_VERSION,
            transfer_bytes: bytes,
            repetitions: 1,
            seeds: seeds.to_vec(),
            cells,
            failed: Vec::new(),
        }
    }

    #[test]
    fn headline_relations_hold() {
        let r = from_matrix(mini_matrix());

        // (a) real CCAs beat the baseline at MTU 9000.
        for (name, pct) in &r.vs_baseline_pct {
            if name == "bbr2" {
                continue;
            }
            assert!(
                *pct < 0.0,
                "{name} should use less energy than baseline: {pct:+.1}%"
            );
        }

        // (b) jumbo frames save energy for every algorithm.
        for (name, pct) in &r.mtu_savings_pct {
            assert!(*pct > 5.0, "{name} MTU saving {pct:.1}% too small");
        }

        // (c) the BBR version gap.
        assert!(
            r.bbr2_over_bbr > 1.05,
            "bbr2 must cost more than bbr: {:.2}",
            r.bbr2_over_bbr
        );
    }

    #[test]
    fn render_mentions_every_cca() {
        let r = from_matrix(mini_matrix());
        let s = render(&r);
        for name in ["bbr", "cubic", "baseline", "bbr2"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
