//! **Figure 8 / §4.5** — energy vs. retransmissions.
//!
//! Across CCAs and MTUs, more retransmissions mean more energy: the
//! paper computes a correlation of **0.47** excluding the wildly variable
//! BBR2 runs, with the no-CC baseline worst on both axes. Designing CCAs
//! that finish fast *and* lose little is an energy goal, not just a
//! performance one.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Figure-8 projection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Result {
    /// The underlying campaign.
    pub matrix: Matrix,
    /// Correlation of energy vs retransmission count, excluding bbr2
    /// (paper: 0.47).
    pub correlation_excl_bbr2: f64,
    /// Correlation including every cell.
    pub correlation_all: f64,
    /// The cell with the most retransmissions (name, mtu).
    pub most_retx: (String, u32),
}

/// Project the campaign into Figure 8.
pub fn from_matrix(matrix: Matrix) -> Result {
    let corr_of = |exclude_bbr2: bool| -> f64 {
        let cells: Vec<_> = matrix
            .cells
            .iter()
            .filter(|c| !(exclude_bbr2 && c.cca == "bbr2"))
            .collect();
        let retx: Vec<f64> = cells.iter().map(|c| c.retx.mean).collect();
        let energy: Vec<f64> = cells.iter().map(|c| c.energy_j.mean).collect();
        analysis::stats::pearson(&retx, &energy)
    };
    let most_retx = matrix
        .cells
        .iter()
        .max_by(|a, b| a.retx.mean.total_cmp(&b.retx.mean))
        .map(|c| (c.cca.clone(), c.mtu))
        .unwrap_or_default();

    Result {
        correlation_excl_bbr2: corr_of(true),
        correlation_all: corr_of(false),
        most_retx,
        matrix,
    }
}

/// Run the campaign and project it.
pub fn run(scale: crate::scale::Scale) -> Result {
    from_matrix(crate::matrix::run_matrix(scale))
}

/// Render the scatter as rows.
pub fn render(result: &Result) -> String {
    let mut t = analysis::table::Table::new(["cca", "mtu", "retransmissions", "energy (J)"]);
    for cell in &result.matrix.cells {
        t.row([
            cell.cca.clone(),
            cell.mtu.to_string(),
            format!("{:.0}", cell.retx.mean),
            format!("{:.1}", cell.energy_j.mean),
        ]);
    }
    format!(
        "Figure 8 — energy vs retransmissions (all CCA x MTU cells)\n\n{t}\n\
         correlation excl. bbr2: {:.2} (paper: 0.47) | incl. bbr2: {:.2}\n\
         most retransmissions: {} @ MTU {}\n",
        result.correlation_excl_bbr2,
        result.correlation_all,
        result.most_retx.0,
        result.most_retx.1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_cell;
    use cca::CcaKind;
    use netsim::units::MB;

    fn mini_matrix() -> Matrix {
        let seeds = [1u64];
        let bytes = 250 * MB;
        let mut cells = Vec::new();
        // At MTU 9000 retransmission differences are sharpest.
        for cca in [
            CcaKind::Bbr,
            CcaKind::Vegas,
            CcaKind::Cubic,
            CcaKind::Baseline,
        ] {
            cells.push(run_cell(cca, 9000, bytes, &seeds).expect("cell completes"));
        }
        Matrix {
            schema_version: crate::matrix::MATRIX_SCHEMA_VERSION,
            transfer_bytes: bytes,
            repetitions: 1,
            seeds: seeds.to_vec(),
            cells,
            failed: Vec::new(),
        }
    }

    #[test]
    fn baseline_dominates_retransmissions_and_correlation_is_positive() {
        let r = from_matrix(mini_matrix());
        assert_eq!(r.most_retx.0, "baseline");
        assert!(
            r.correlation_excl_bbr2 > 0.3,
            "retx-energy correlation should be positive: {:.2}",
            r.correlation_excl_bbr2
        );
    }

    #[test]
    fn render_reports_both_correlations() {
        let r = from_matrix(mini_matrix());
        let s = render(&r);
        assert!(s.contains("Figure 8"));
        assert!(s.contains("excl. bbr2"));
    }
}
