//! Atomic artifact persistence.
//!
//! Every result file the campaign (and the bench binaries) emit goes
//! through [`write_atomic`]: write to a sibling temp file, fsync, rename
//! over the destination. A crash mid-write leaves either the old file or
//! the new one — never a torn half of each. Errors carry the path they
//! failed on, so "No space left on device" names the artifact it cost.

use serde::Serialize;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// A persistence failure, annotated with the path being written.
#[derive(Debug)]
pub struct PersistError {
    /// The artifact (or its temp sibling) that failed.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

fn err_at(path: &Path) -> impl FnOnce(io::Error) -> PersistError + '_ {
    move |source| PersistError {
        path: path.to_path_buf(),
        source,
    }
}

/// Atomically replace `path` with `bytes`: temp file in the same
/// directory (so the rename cannot cross filesystems), fsync, rename.
/// The parent directory is created if missing.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir).map_err(err_at(dir))?;
    }
    // Unique per process: concurrent writers of the same artifact race on
    // the rename (last one wins, both files whole), not on the temp file.
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(name);
    let result = (|| {
        let mut f = File::create(&tmp).map_err(err_at(&tmp))?;
        f.write_all(bytes).map_err(err_at(&tmp))?;
        // Flush file contents to disk before the rename publishes them:
        // rename-before-data can expose an empty file after a power cut.
        f.sync_all().map_err(err_at(&tmp))?;
        fs::rename(&tmp, path).map_err(err_at(path))?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Serialize `value` as pretty JSON and write it atomically to `path`.
pub fn save_json_atomic<T: Serialize>(path: &Path, value: &T) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(value).map_err(|e| PersistError {
        path: path.to_path_buf(),
        source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
    })?;
    write_atomic(path, json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("greenenvy-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_creates_missing_directories() {
        let dir = scratch("mkdir");
        let path = dir.join("deep/nested/out.json");
        write_atomic(&path, b"{}").expect("write succeeds");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_replaces_whole_file_and_leaves_no_temp() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "second, longer contents"
        );
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(
            leftovers.len(),
            1,
            "temp files must not linger: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_name_the_path() {
        // A directory cannot be overwritten by a file: the rename fails
        // and the error must carry the destination path.
        let dir = scratch("error");
        let path = dir.join("occupied");
        fs::create_dir_all(&path).unwrap();
        let err = write_atomic(&path, b"x").unwrap_err();
        assert!(err.to_string().contains("occupied"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_json_roundtrips() {
        let dir = scratch("json");
        let path = dir.join("v.json");
        save_json_atomic(&path, &serde_json::json!({"x": 1})).unwrap();
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 1"));
        let _ = fs::remove_dir_all(&dir);
    }
}
