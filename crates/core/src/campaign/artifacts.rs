//! Per-cell observability artifacts.
//!
//! When a campaign (or the chaos sweep) runs with `--trace-out`, every
//! repetition leaves a Perfetto trace and a Prometheus metrics snapshot
//! in the artifact directory; a repetition that ends in an aborted flow
//! additionally dumps its per-flow flight rings — the last N protocol
//! events before the abort, which is usually exactly the evidence a
//! post-mortem needs. All writes go through [`super::persist`], so a
//! crash mid-campaign never leaves a torn artifact.

use super::persist::{write_atomic, PersistError};
use obs::ObsReport;
use std::path::Path;

/// Persist one repetition's observability report into `dir`.
///
/// Writes `<label>.trace.json` (Chrome-trace/Perfetto JSON, open in
/// `ui.perfetto.dev` or `chrome://tracing`) and `<label>.prom`
/// (Prometheus text exposition). When `aborted` is set, also writes
/// `<label>.flight.txt` with every flow's flight-ring dump.
pub fn persist_cell_obs(
    dir: &Path,
    label: &str,
    report: &ObsReport,
    aborted: bool,
) -> Result<(), PersistError> {
    write_atomic(
        &dir.join(format!("{label}.trace.json")),
        report.perfetto_json().as_bytes(),
    )?;
    write_atomic(
        &dir.join(format!("{label}.prom")),
        report.prometheus_text().as_bytes(),
    )?;
    if aborted {
        write_atomic(
            &dir.join(format!("{label}.flight.txt")),
            report.flight_dump().as_bytes(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{FlowEvent, ObsRecorder, Recorder};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("greenenvy-artifacts-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report(aborted: bool) -> ObsReport {
        let mut r = ObsRecorder::with_config(16, 0);
        r.flow_event(0, 0, FlowEvent::Started);
        r.flow_event(10, 0, FlowEvent::Rto { consecutive: 1 });
        r.flow_event(
            20,
            0,
            if aborted {
                FlowEvent::Aborted
            } else {
                FlowEvent::Completed
            },
        );
        r.finalize(30)
    }

    #[test]
    fn completed_cell_writes_trace_and_prom_only() {
        let dir = scratch("ok");
        persist_cell_obs(&dir, "cubic_mtu9000_seed1", &sample_report(false), false).unwrap();
        assert!(dir.join("cubic_mtu9000_seed1.trace.json").exists());
        assert!(dir.join("cubic_mtu9000_seed1.prom").exists());
        assert!(!dir.join("cubic_mtu9000_seed1.flight.txt").exists());
        let json = std::fs::read_to_string(dir.join("cubic_mtu9000_seed1.trace.json")).unwrap();
        assert!(json.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_cell_also_dumps_the_flight_ring() {
        let dir = scratch("abort");
        persist_cell_obs(&dir, "cell", &sample_report(true), true).unwrap();
        let flight = std::fs::read_to_string(dir.join("cell.flight.txt")).unwrap();
        assert!(flight.contains("ABORTED"), "{flight}");
        assert!(flight.contains("rto #1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
