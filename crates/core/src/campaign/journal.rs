//! The append-only per-cell checkpoint journal.
//!
//! One JSONL file per campaign. Line 1 is a header carrying a
//! *fingerprint* — a hash over everything that determines cell results:
//! code revision, matrix schema, transfer size, repetition count, the
//! exact seed schedule, and the CCA × MTU job list. Every following line
//! is one completed (or terminally failed) cell, stored as an escaped
//! JSON string plus a content hash over `fingerprint + record bytes`.
//!
//! The paranoia is deliberate and layered:
//! * a **fingerprint mismatch** (code changed, scale changed, seeds
//!   changed) invalidates the whole journal — stale cells are never
//!   merged into a fresh campaign;
//! * a **bad content hash** invalidates just that record — bit rot or a
//!   partial overwrite costs one cell, not the run;
//! * a **torn final line** (the classic crash-mid-append) is silently
//!   dropped — exactly the record the crash interrupted;
//! * records are **fsynced one by one**, so a journal never claims a
//!   cell the disk doesn't hold.
//!
//! Loading therefore returns only records that are provably from this
//! exact campaign configuration; everything else is re-run.

use crate::matrix::{Cell, CellFailure, MATRIX_SCHEMA_VERSION};
use crate::scale::Scale;
use cca::CcaKind;
use serde::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Bump when the meaning of a cell result changes without the matrix
/// schema moving (e.g. a simulator behaviour fix that shifts numbers):
/// journaled cells from before the bump must not satisfy `--resume`.
pub const JOURNAL_CODE_REV: u32 = 1;

/// Journal line-format version.
const JOURNAL_SCHEMA: u32 = 1;

/// 64-bit FNV-1a. Not cryptographic — the threat model is bit rot, torn
/// writes, and stale files, not an adversary forging cells.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The campaign configuration fingerprint carried by the journal header
/// and mixed into every record hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint(String);

impl Fingerprint {
    /// Fingerprint of a campaign at `scale` under the current code.
    pub fn of(scale: &Scale) -> Fingerprint {
        let mut spec = format!(
            "pkg={};schema={};rev={};bytes={};reps={};seeds=",
            env!("CARGO_PKG_VERSION"),
            MATRIX_SCHEMA_VERSION,
            JOURNAL_CODE_REV,
            scale.transfer_bytes,
            scale.repetitions,
        );
        for s in scale.seeds() {
            spec.push_str(&format!("{s},"));
        }
        spec.push_str(";jobs=");
        for cca in CcaKind::ALL {
            for mtu in crate::matrix::MTUS {
                spec.push_str(&format!("{}@{mtu},", cca.name()));
            }
        }
        Fingerprint(format!("{:016x}", fnv64(spec.as_bytes())))
    }

    /// The hex digest (what the header stores).
    pub fn hex(&self) -> &str {
        &self.0
    }

    fn record_hash(&self, record: &str) -> String {
        format!("{:016x}", fnv64(format!("{}\n{record}", self.0).as_bytes()))
    }
}

/// One validated journal entry.
#[derive(Clone, Debug)]
pub enum Entry {
    /// A completed cell.
    Cell(Cell),
    /// A cell that failed its run and the salted-seed retry.
    Failed(CellFailure),
}

/// What loading a journal produced.
#[derive(Debug, Default)]
pub struct Loaded {
    /// Validated entries, in journal (completion) order.
    pub entries: Vec<Entry>,
    /// Records dropped for corruption: unparsable line, bad hash, or a
    /// payload that no longer deserializes. (A torn final line counts.)
    pub dropped: usize,
    /// True when the whole journal was discarded: missing/garbled header
    /// or a fingerprint from a different campaign configuration.
    pub stale: bool,
}

/// A journal I/O failure, annotated with the journal path.
#[derive(Debug)]
pub struct JournalError {
    /// The journal file involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Load and validate a journal. A missing file is an empty (not stale)
/// journal; only I/O errors other than `NotFound` are surfaced.
pub fn load(path: &Path, fingerprint: &Fingerprint) -> Result<Loaded, JournalError> {
    let body = match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Loaded::default()),
        Err(source) => {
            return Err(JournalError {
                path: path.to_path_buf(),
                source,
            })
        }
    };
    let mut lines = body.split('\n');
    let header = lines.next().unwrap_or("");
    let mut out = Loaded::default();
    let header_ok = serde_json::from_str::<Value>(header)
        .ok()
        .map(|h| {
            h["journal"].as_str() == Some("greenenvy-campaign")
                && h["schema"].as_u64() == Some(JOURNAL_SCHEMA as u64)
                && h["fingerprint"].as_str() == Some(fingerprint.hex())
        })
        .unwrap_or(false);
    if !header_ok {
        out.stale = true;
        return Ok(out);
    }
    let lines: Vec<&str> = lines.collect();
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        let last = i + 1 == lines.len();
        match parse_record(line, fingerprint) {
            Some(entry) => out.entries.push(entry),
            // A torn *final* line is the expected crash signature and is
            // dropped silently; corruption anywhere else is counted too
            // (the cell re-runs either way) but suggests real bit rot.
            None => {
                let _ = last;
                out.dropped += 1;
            }
        }
    }
    Ok(out)
}

fn parse_record(line: &str, fingerprint: &Fingerprint) -> Option<Entry> {
    let v: Value = serde_json::from_str(line).ok()?;
    let kind = v["kind"].as_str()?;
    let hash = v["hash"].as_str()?;
    let record = v["record"].as_str()?;
    if fingerprint.record_hash(record) != hash {
        return None;
    }
    match kind {
        "cell" => serde_json::from_str::<Cell>(record).ok().map(Entry::Cell),
        "failed" => serde_json::from_str::<CellFailure>(record)
            .ok()
            .map(Entry::Failed),
        _ => None,
    }
}

/// An open journal being appended to.
pub struct Writer {
    path: PathBuf,
    file: File,
    fingerprint: Fingerprint,
}

impl Writer {
    /// Create a fresh journal at `path` (atomically replacing whatever
    /// was there) containing the header and the given pre-validated
    /// entries, then open it for appending. Passing the entries through
    /// creation is how resume *compacts*: torn or corrupt lines from the
    /// previous life are not carried forward.
    pub fn create(
        path: &Path,
        fingerprint: &Fingerprint,
        entries: &[Entry],
    ) -> Result<Writer, JournalError> {
        let header = serde_json::json!({
            "journal": "greenenvy-campaign",
            "schema": JOURNAL_SCHEMA,
            "fingerprint": (fingerprint.hex())
        });
        let mut body = format!(
            "{}\n",
            serde_json::to_string(&header).expect("journal header serializes")
        );
        for e in entries {
            body.push_str(&Writer::render(e, fingerprint));
        }
        super::persist::write_atomic(path, body.as_bytes()).map_err(|e| JournalError {
            path: e.path,
            source: e.source,
        })?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|source| JournalError {
                path: path.to_path_buf(),
                source,
            })?;
        Ok(Writer {
            path: path.to_path_buf(),
            file,
            fingerprint: fingerprint.clone(),
        })
    }

    fn render(entry: &Entry, fingerprint: &Fingerprint) -> String {
        let (kind, record) = match entry {
            Entry::Cell(c) => ("cell", serde_json::to_string(c)),
            Entry::Failed(f) => ("failed", serde_json::to_string(f)),
        };
        let record = record.expect("journal records serialize");
        let hash = fingerprint.record_hash(&record);
        let line = serde_json::json!({"kind": kind, "hash": hash, "record": record});
        format!(
            "{}\n",
            serde_json::to_string(&line).expect("journal line serializes")
        )
    }

    /// Append one entry and fsync it to disk before returning: once this
    /// returns, a crash cannot un-complete the cell.
    pub fn append(&mut self, entry: &Entry) -> Result<(), JournalError> {
        let line = Writer::render(entry, &self.fingerprint);
        let at = |source| JournalError {
            path: self.path.clone(),
            source,
        };
        self.file.write_all(line.as_bytes()).map_err(at)?;
        self.file.sync_data().map_err(at)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::stats::Summary;

    fn stub_cell(cca: CcaKind, mtu: u32, mean: f64) -> Cell {
        let xs = [mean, mean * 1.5];
        Cell {
            cca: cca.name().to_string(),
            mtu,
            energy_j: Summary::of(&xs),
            power_w: Summary::of(&xs),
            fct_s: Summary::of(&xs),
            retx: Summary::of(&xs),
            goodput_gbps: Summary::of(&xs),
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("greenenvy-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_cells_bit_exactly() {
        let dir = scratch("roundtrip");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let cells = [
            stub_cell(CcaKind::Cubic, 1500, 0.1),
            stub_cell(CcaKind::Reno, 9000, std::f64::consts::PI),
        ];
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        for c in &cells {
            w.append(&Entry::Cell(c.clone())).unwrap();
        }
        w.append(&Entry::Failed(CellFailure {
            cca: "bbr".into(),
            mtu: 3000,
            error: "boom".into(),
            retry_error: "boom again".into(),
        }))
        .unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert!(!loaded.stale);
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.entries.len(), 3);
        for (entry, original) in loaded.entries.iter().zip(&cells) {
            let Entry::Cell(c) = entry else {
                panic!("expected cell")
            };
            // Bit-exact floats: serialization is shortest-roundtrip.
            assert_eq!(
                serde_json::to_string(c).unwrap(),
                serde_json::to_string(original).unwrap()
            );
        }
        assert!(matches!(&loaded.entries[2], Entry::Failed(f) if f.cca == "bbr"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty_not_stale() {
        let fp = Fingerprint::of(&Scale::quick());
        let loaded = load(Path::new("/nonexistent/journal.jsonl"), &fp).unwrap();
        assert!(!loaded.stale);
        assert!(loaded.entries.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_discards_everything() {
        let dir = scratch("stale");
        let path = dir.join("j.jsonl");
        let fp_quick = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp_quick, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        // Same journal read under a different campaign configuration.
        let fp_std = Fingerprint::of(&Scale::standard());
        assert_ne!(fp_quick, fp_std);
        let loaded = load(&path, &fp_std).unwrap();
        assert!(loaded.stale);
        assert!(loaded.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_drops_only_that_record() {
        let dir = scratch("torn");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0)))
            .unwrap();
        drop(w);
        // Simulate a crash mid-append: chop the last record in half.
        let body = std::fs::read_to_string(&path).unwrap();
        let cut = body.len() - 25;
        std::fs::write(&path, &body[..cut]).unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert!(!loaded.stale);
        assert_eq!(loaded.entries.len(), 1, "first record survives");
        assert_eq!(loaded.dropped, 1, "torn record is dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_invalidates_one_record() {
        let dir = scratch("bitrot");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0)))
            .unwrap();
        drop(w);
        // Corrupt a digit inside the *first* record's payload (keeps the
        // line valid JSON; the content hash must catch it).
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        let corrupted = lines[1].replacen("1500", "1501", 1);
        let body = format!("{}\n{}\n{}\n", lines[0], corrupted, lines[2]);
        std::fs::write(&path, body).unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert!(!loaded.stale);
        assert_eq!(loaded.dropped, 1);
        assert_eq!(loaded.entries.len(), 1);
        let Entry::Cell(c) = &loaded.entries[0] else {
            panic!()
        };
        assert_eq!(c.mtu, 3000, "the untouched record survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_compacts_and_reopens_for_append() {
        let dir = scratch("compact");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let kept = Entry::Cell(stub_cell(CcaKind::Vegas, 6000, 4.0));
        let mut w = Writer::create(&path, &fp, std::slice::from_ref(&kept)).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Bbr, 1500, 5.0)))
            .unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_cover_seeds_not_just_sizes() {
        // Two scales with identical sizes but different seed schedules
        // must not share a fingerprint.
        let a = Scale {
            transfer_bytes: 1,
            two_flow_bytes: 1,
            repetitions: 2,
            name: "a",
        };
        let b = Scale {
            transfer_bytes: 1,
            two_flow_bytes: 1,
            repetitions: 3,
            name: "b",
        };
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&a));
    }
}
