//! The append-only per-cell checkpoint journal — single-file and sharded.
//!
//! **Single-file layout**: one JSONL file per campaign. Line 1 is a
//! header carrying a *fingerprint* — a hash over everything that
//! determines cell results: code revision, matrix schema, transfer size,
//! repetition count, the exact seed schedule, the CCA × MTU job list,
//! and the retry policy (whose human-readable spec the header also
//! records, so resume provably replays the same schedule). Every
//! following line is one completed (or terminally failed) cell, stored
//! as an escaped JSON string plus a content hash over `fingerprint +
//! record bytes`.
//!
//! **Sharded layout** ([`create_sharded`] / [`load_sharded`]): a
//! directory holding one such JSONL per worker (`shard-000.jsonl`,
//! `shard-001.jsonl`, …) plus `quarantine.jsonl` for poison cells. Each
//! worker owns its shard exclusively, so appends never contend on a
//! lock or serialize their fsyncs behind another worker's — the write
//! path scales with the pool instead of bottlenecking on one file.
//! Every shard carries the full header discipline independently, which
//! shrinks the failure domain: a stale or garbled shard invalidates
//! *its* records, not the campaign.
//!
//! The paranoia is deliberate and layered:
//! * a **fingerprint mismatch** (code changed, scale changed, seeds
//!   changed, retry policy changed) invalidates that file — stale cells
//!   are never merged into a fresh campaign;
//! * a **bad content hash** invalidates just that record — bit rot or a
//!   partial overwrite costs one cell, not the run;
//! * a **torn final line** (the classic crash-mid-append) is silently
//!   dropped — exactly the record the crash interrupted;
//! * records are **fsynced one by one**, so a journal never claims a
//!   cell the disk doesn't hold.
//!
//! Loading therefore returns only records that are provably from this
//! exact campaign configuration; everything else is re-run.

use super::supervisor::{QuarantineRecord, RetryPolicy};
use crate::matrix::{Cell, CellFailure, MATRIX_SCHEMA_VERSION};
use crate::scale::Scale;
use cca::CcaKind;
use serde::Value;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Bump when the meaning of a cell result changes without the matrix
/// schema moving (e.g. a simulator behaviour fix that shifts numbers):
/// journaled cells from before the bump must not satisfy `--resume`.
pub const JOURNAL_CODE_REV: u32 = 2;

/// Journal line-format version. v2 added the retry-policy header field,
/// per-shard headers, cumulative attempt counters on failure records,
/// and quarantine records.
const JOURNAL_SCHEMA: u32 = 2;

/// 64-bit FNV-1a. Not cryptographic — the threat model is bit rot, torn
/// writes, and stale files, not an adversary forging cells.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The campaign configuration fingerprint carried by every journal (and
/// shard) header and mixed into every record hash. Covers the retry
/// policy: changing `max_attempts` or the backoff changes which seed
/// trajectories failures explore, so journals from another policy are
/// another campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    hash: String,
    policy: String,
}

impl Fingerprint {
    /// Fingerprint of a campaign at `scale` under the current code and
    /// the default retry policy.
    pub fn of(scale: &Scale) -> Fingerprint {
        Fingerprint::for_policy(scale, &RetryPolicy::default())
    }

    /// Fingerprint of a campaign at `scale` under an explicit policy.
    pub fn for_policy(scale: &Scale, policy: &RetryPolicy) -> Fingerprint {
        let mut spec = format!(
            "pkg={};schema={};rev={};bytes={};reps={};seeds=",
            env!("CARGO_PKG_VERSION"),
            MATRIX_SCHEMA_VERSION,
            JOURNAL_CODE_REV,
            scale.transfer_bytes,
            scale.repetitions,
        );
        for s in scale.seeds() {
            spec.push_str(&format!("{s},"));
        }
        spec.push_str(";jobs=");
        for cca in CcaKind::ALL {
            for mtu in crate::matrix::MTUS {
                spec.push_str(&format!("{}@{mtu},", cca.name()));
            }
        }
        let policy_spec = policy.spec();
        spec.push_str(&format!(";policy={policy_spec}"));
        Fingerprint {
            hash: format!("{:016x}", fnv64(spec.as_bytes())),
            policy: policy_spec,
        }
    }

    /// The hex digest (what the header stores).
    pub fn hex(&self) -> &str {
        &self.hash
    }

    /// The human-readable retry-policy spec recorded next to the hash.
    pub fn policy_spec(&self) -> &str {
        &self.policy
    }

    fn record_hash(&self, record: &str) -> String {
        format!(
            "{:016x}",
            fnv64(format!("{}\n{record}", self.hash).as_bytes())
        )
    }
}

/// One validated journal entry.
#[derive(Clone, Debug)]
pub enum Entry {
    /// A completed cell.
    Cell(Cell),
    /// A cell that failed every attempt of a campaign life. Carries the
    /// cumulative attempt counter so a later resume keeps the seed
    /// salting monotone instead of re-exploring spent trajectories.
    Failed(CellFailure),
    /// A quarantined poison cell with its full attempt history.
    Quarantine(QuarantineRecord),
}

impl Entry {
    /// The `(cca, mtu)` cell coordinates this entry describes.
    pub fn key(&self) -> (String, u32) {
        match self {
            Entry::Cell(c) => (c.cca.clone(), c.mtu),
            Entry::Failed(f) => (f.cca.clone(), f.mtu),
            Entry::Quarantine(q) => (q.cca.clone(), q.mtu),
        }
    }
}

/// What loading a journal produced.
#[derive(Debug, Default)]
pub struct Loaded {
    /// Validated entries, in journal (completion) order.
    pub entries: Vec<Entry>,
    /// Records dropped for corruption: unparsable line, bad hash, or a
    /// payload that no longer deserializes. (A torn final line counts.)
    pub dropped: usize,
    /// True when the whole journal was discarded: missing/garbled header
    /// or a fingerprint from a different campaign configuration.
    pub stale: bool,
}

/// What loading a sharded journal directory produced. Validation is
/// per shard: one stale or torn shard costs its own records only.
#[derive(Debug, Default)]
pub struct LoadedShards {
    /// Validated entries merged across shards ([`dedupe`]d, so each cell
    /// key appears at most once), in shard-name-then-line order.
    pub entries: Vec<Entry>,
    /// Corrupt records dropped across all non-stale shards.
    pub dropped: usize,
    /// Shards discarded whole (garbled header / foreign fingerprint).
    pub stale_shards: usize,
    /// Shard files found.
    pub shards: usize,
}

/// A journal I/O failure, annotated with the journal path.
#[derive(Debug)]
pub struct JournalError {
    /// The journal file involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Load and validate a journal. A missing file is an empty (not stale)
/// journal; only I/O errors other than `NotFound` are surfaced.
pub fn load(path: &Path, fingerprint: &Fingerprint) -> Result<Loaded, JournalError> {
    let body = match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Loaded::default()),
        Err(source) => {
            return Err(JournalError {
                path: path.to_path_buf(),
                source,
            })
        }
    };
    let mut lines = body.split('\n');
    let header = lines.next().unwrap_or("");
    let mut out = Loaded::default();
    let header_ok = serde_json::from_str::<Value>(header)
        .ok()
        .map(|h| {
            h["journal"].as_str() == Some("greenenvy-campaign")
                && h["schema"].as_u64() == Some(JOURNAL_SCHEMA as u64)
                && h["fingerprint"].as_str() == Some(fingerprint.hex())
        })
        .unwrap_or(false);
    if !header_ok {
        out.stale = true;
        return Ok(out);
    }
    let lines: Vec<&str> = lines.collect();
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        let last = i + 1 == lines.len();
        match parse_record(line, fingerprint) {
            Some(entry) => out.entries.push(entry),
            // A torn *final* line is the expected crash signature and is
            // dropped silently; corruption anywhere else is counted too
            // (the cell re-runs either way) but suggests real bit rot.
            None => {
                let _ = last;
                out.dropped += 1;
            }
        }
    }
    Ok(out)
}

/// The per-worker shard file inside a sharded journal directory.
pub fn shard_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("shard-{worker:03}.jsonl"))
}

/// The poison-cell quarantine shard inside a sharded journal directory.
pub fn quarantine_path(dir: &Path) -> PathBuf {
    dir.join("quarantine.jsonl")
}

/// Load every `shard-*.jsonl` under `dir`, validating each shard
/// independently, and merge the survivors. A missing directory is an
/// empty journal. Merge order is deterministic — shards sorted by file
/// name, lines in append order — and duplicate cell keys across shards
/// collapse via [`dedupe`].
pub fn load_sharded(dir: &Path, fingerprint: &Fingerprint) -> Result<LoadedShards, JournalError> {
    let mut files: Vec<PathBuf> = Vec::new();
    match fs::read_dir(dir) {
        Ok(iter) => {
            for entry in iter.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("shard-") && name.ends_with(".jsonl") {
                    files.push(entry.path());
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadedShards::default()),
        Err(source) => {
            return Err(JournalError {
                path: dir.to_path_buf(),
                source,
            })
        }
    }
    files.sort();
    let mut out = LoadedShards {
        shards: files.len(),
        ..Default::default()
    };
    let mut all = Vec::new();
    for file in &files {
        let loaded = load(file, fingerprint)?;
        if loaded.stale {
            out.stale_shards += 1;
        } else {
            all.extend(loaded.entries);
            out.dropped += loaded.dropped;
        }
    }
    out.entries = dedupe(all);
    Ok(out)
}

/// Collapse duplicate cell keys from a merged entry stream into one
/// entry each, deterministically: a completed cell always beats a
/// failure for the same key, a failure with more cumulative attempts
/// beats one with fewer, and otherwise the later entry wins. First-seen
/// key order is preserved.
pub fn dedupe(entries: Vec<Entry>) -> Vec<Entry> {
    let mut order: Vec<(String, u32)> = Vec::new();
    let mut best: BTreeMap<(String, u32), Entry> = BTreeMap::new();
    for entry in entries {
        let key = entry.key();
        match best.get(&key) {
            None => {
                order.push(key.clone());
                best.insert(key, entry);
            }
            Some(old) => {
                let replace = match (old, &entry) {
                    (_, Entry::Cell(_)) => true,
                    (Entry::Cell(_), _) => false,
                    (Entry::Failed(a), Entry::Failed(b)) => b.attempts >= a.attempts,
                    _ => true,
                };
                if replace {
                    best.insert(key, entry);
                }
            }
        }
    }
    order.into_iter().filter_map(|k| best.remove(&k)).collect()
}

fn parse_record(line: &str, fingerprint: &Fingerprint) -> Option<Entry> {
    let v: Value = serde_json::from_str(line).ok()?;
    let kind = v["kind"].as_str()?;
    let hash = v["hash"].as_str()?;
    let record = v["record"].as_str()?;
    if fingerprint.record_hash(record) != hash {
        return None;
    }
    match kind {
        "cell" => serde_json::from_str::<Cell>(record).ok().map(Entry::Cell),
        "failed" => serde_json::from_str::<CellFailure>(record)
            .ok()
            .map(Entry::Failed),
        "quarantine" => serde_json::from_str::<QuarantineRecord>(record)
            .ok()
            .map(Entry::Quarantine),
        _ => None,
    }
}

/// An open journal (or shard) being appended to.
pub struct Writer {
    path: PathBuf,
    file: File,
    fingerprint: Fingerprint,
}

impl Writer {
    /// Create a fresh journal at `path` (atomically replacing whatever
    /// was there) containing the header and the given pre-validated
    /// entries, then open it for appending. Passing the entries through
    /// creation is how resume *compacts*: torn or corrupt lines from the
    /// previous life are not carried forward.
    pub fn create(
        path: &Path,
        fingerprint: &Fingerprint,
        entries: &[Entry],
    ) -> Result<Writer, JournalError> {
        Writer::create_with_shard(path, fingerprint, entries, None)
    }

    fn create_with_shard(
        path: &Path,
        fingerprint: &Fingerprint,
        entries: &[Entry],
        shard: Option<usize>,
    ) -> Result<Writer, JournalError> {
        let header = match shard {
            Some(i) => serde_json::json!({
                "journal": "greenenvy-campaign",
                "schema": JOURNAL_SCHEMA,
                "fingerprint": (fingerprint.hex()),
                "policy": (fingerprint.policy_spec()),
                "shard": i
            }),
            None => serde_json::json!({
                "journal": "greenenvy-campaign",
                "schema": JOURNAL_SCHEMA,
                "fingerprint": (fingerprint.hex()),
                "policy": (fingerprint.policy_spec())
            }),
        };
        let mut body = format!(
            "{}\n",
            serde_json::to_string(&header).expect("journal header serializes")
        );
        for e in entries {
            body.push_str(&Writer::render(e, fingerprint));
        }
        super::persist::write_atomic(path, body.as_bytes()).map_err(|e| JournalError {
            path: e.path,
            source: e.source,
        })?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|source| JournalError {
                path: path.to_path_buf(),
                source,
            })?;
        Ok(Writer {
            path: path.to_path_buf(),
            file,
            fingerprint: fingerprint.clone(),
        })
    }

    fn render(entry: &Entry, fingerprint: &Fingerprint) -> String {
        let (kind, record) = match entry {
            Entry::Cell(c) => ("cell", serde_json::to_string(c)),
            Entry::Failed(f) => ("failed", serde_json::to_string(f)),
            Entry::Quarantine(q) => ("quarantine", serde_json::to_string(q)),
        };
        let record = record.expect("journal records serialize");
        let hash = fingerprint.record_hash(&record);
        let line = serde_json::json!({"kind": kind, "hash": hash, "record": record});
        format!(
            "{}\n",
            serde_json::to_string(&line).expect("journal line serializes")
        )
    }

    /// Append one entry and fsync it to disk before returning: once this
    /// returns, a crash cannot un-complete the cell.
    pub fn append(&mut self, entry: &Entry) -> Result<(), JournalError> {
        let line = Writer::render(entry, &self.fingerprint);
        let at = |source| JournalError {
            path: self.path.clone(),
            source,
        };
        self.file.write_all(line.as_bytes()).map_err(at)?;
        self.file.sync_data().map_err(at)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Create a fresh sharded journal under `dir`: one shard per worker,
/// all previous shard and quarantine files wiped first (so shards from
/// a wider previous pool cannot resurrect stale records on the *next*
/// resume). The compacted survivors `keep` land in shard 0; the other
/// shards start empty. Returns one open writer per worker, in index
/// order.
pub fn create_sharded(
    dir: &Path,
    fingerprint: &Fingerprint,
    keep: &[Entry],
    shards: usize,
) -> Result<Vec<Writer>, JournalError> {
    let at = |source| JournalError {
        path: dir.to_path_buf(),
        source,
    };
    fs::create_dir_all(dir).map_err(at)?;
    for entry in fs::read_dir(dir).map_err(at)?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ours =
            (name.starts_with("shard-") && name.ends_with(".jsonl")) || name == "quarantine.jsonl";
        if ours {
            fs::remove_file(entry.path()).map_err(|source| JournalError {
                path: entry.path(),
                source,
            })?;
        }
    }
    let shards = shards.max(1);
    let mut writers = Vec::with_capacity(shards);
    for i in 0..shards {
        let entries: &[Entry] = if i == 0 { keep } else { &[] };
        writers.push(Writer::create_with_shard(
            &shard_path(dir, i),
            fingerprint,
            entries,
            Some(i),
        )?);
    }
    Ok(writers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::stats::Summary;

    fn stub_cell(cca: CcaKind, mtu: u32, mean: f64) -> Cell {
        let xs = [mean, mean * 1.5];
        Cell {
            cca: cca.name().to_string(),
            mtu,
            energy_j: Summary::of(&xs),
            power_w: Summary::of(&xs),
            fct_s: Summary::of(&xs),
            retx: Summary::of(&xs),
            goodput_gbps: Summary::of(&xs),
        }
    }

    fn stub_failure(cca: CcaKind, mtu: u32, attempts: u32) -> CellFailure {
        CellFailure {
            cca: cca.name().to_string(),
            mtu,
            error: "boom".into(),
            retry_error: "boom again".into(),
            attempts,
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("greenenvy-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_cells_bit_exactly() {
        let dir = scratch("roundtrip");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let cells = [
            stub_cell(CcaKind::Cubic, 1500, 0.1),
            stub_cell(CcaKind::Reno, 9000, std::f64::consts::PI),
        ];
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        for c in &cells {
            w.append(&Entry::Cell(c.clone())).unwrap();
        }
        w.append(&Entry::Failed(stub_failure(CcaKind::Bbr, 3000, 2)))
            .unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert!(!loaded.stale);
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.entries.len(), 3);
        for (entry, original) in loaded.entries.iter().zip(&cells) {
            let Entry::Cell(c) = entry else {
                panic!("expected cell")
            };
            // Bit-exact floats: serialization is shortest-roundtrip.
            assert_eq!(
                serde_json::to_string(c).unwrap(),
                serde_json::to_string(original).unwrap()
            );
        }
        assert!(
            matches!(&loaded.entries[2], Entry::Failed(f) if f.cca == "bbr" && f.attempts == 2)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty_not_stale() {
        let fp = Fingerprint::of(&Scale::quick());
        let loaded = load(Path::new("/nonexistent/journal.jsonl"), &fp).unwrap();
        assert!(!loaded.stale);
        assert!(loaded.entries.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_discards_everything() {
        let dir = scratch("stale");
        let path = dir.join("j.jsonl");
        let fp_quick = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp_quick, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        // Same journal read under a different campaign configuration.
        let fp_std = Fingerprint::of(&Scale::standard());
        assert_ne!(fp_quick, fp_std);
        let loaded = load(&path, &fp_std).unwrap();
        assert!(loaded.stale);
        assert!(loaded.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_change_discards_the_journal() {
        // Same scale, different retry policy: the seed trajectories a
        // failure explores differ, so the journal must read as stale.
        let dir = scratch("policy");
        let path = dir.join("j.jsonl");
        let fp_default = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp_default, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        let fp_patient = Fingerprint::for_policy(
            &Scale::quick(),
            &RetryPolicy {
                max_attempts: 5,
                backoff_base: 2,
            },
        );
        assert_ne!(fp_default, fp_patient);
        let loaded = load(&path, &fp_patient).unwrap();
        assert!(loaded.stale);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_drops_only_that_record() {
        let dir = scratch("torn");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0)))
            .unwrap();
        drop(w);
        // Simulate a crash mid-append: chop the last record in half.
        let body = std::fs::read_to_string(&path).unwrap();
        let cut = body.len() - 25;
        std::fs::write(&path, &body[..cut]).unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert!(!loaded.stale);
        assert_eq!(loaded.entries.len(), 1, "first record survives");
        assert_eq!(loaded.dropped, 1, "torn record is dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_invalidates_one_record() {
        let dir = scratch("bitrot");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0)))
            .unwrap();
        drop(w);
        // Corrupt a digit inside the *first* record's payload (keeps the
        // line valid JSON; the content hash must catch it).
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        let corrupted = lines[1].replacen("1500", "1501", 1);
        let body = format!("{}\n{}\n{}\n", lines[0], corrupted, lines[2]);
        std::fs::write(&path, body).unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert!(!loaded.stale);
        assert_eq!(loaded.dropped, 1);
        assert_eq!(loaded.entries.len(), 1);
        let Entry::Cell(c) = &loaded.entries[0] else {
            panic!()
        };
        assert_eq!(c.mtu, 3000, "the untouched record survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_compacts_and_reopens_for_append() {
        let dir = scratch("compact");
        let path = dir.join("j.jsonl");
        let fp = Fingerprint::of(&Scale::quick());
        let kept = Entry::Cell(stub_cell(CcaKind::Vegas, 6000, 4.0));
        let mut w = Writer::create(&path, &fp, std::slice::from_ref(&kept)).unwrap();
        w.append(&Entry::Cell(stub_cell(CcaKind::Bbr, 1500, 5.0)))
            .unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_cover_seeds_not_just_sizes() {
        // Two scales with identical sizes but different seed schedules
        // must not share a fingerprint.
        let a = Scale {
            transfer_bytes: 1,
            two_flow_bytes: 1,
            repetitions: 2,
            name: "a",
        };
        let b = Scale {
            transfer_bytes: 1,
            two_flow_bytes: 1,
            repetitions: 3,
            name: "b",
        };
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&a));
    }

    #[test]
    fn sharded_roundtrip_merges_in_shard_order() {
        let dir = scratch("sharded");
        let fp = Fingerprint::of(&Scale::quick());
        let mut writers = create_sharded(&dir, &fp, &[], 3).unwrap();
        assert_eq!(writers.len(), 3);
        writers[0]
            .append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        writers[2]
            .append(&Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0)))
            .unwrap();
        writers[1]
            .append(&Entry::Failed(stub_failure(CcaKind::Bbr, 9000, 2)))
            .unwrap();
        let loaded = load_sharded(&dir, &fp).unwrap();
        assert_eq!(loaded.shards, 3);
        assert_eq!(loaded.stale_shards, 0);
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.entries.len(), 3);
        // Merge order: shard 0's record, then shard 1's, then shard 2's.
        assert!(matches!(&loaded.entries[0], Entry::Cell(c) if c.cca == "cubic"));
        assert!(matches!(&loaded.entries[1], Entry::Failed(f) if f.cca == "bbr"));
        assert!(matches!(&loaded.entries[2], Entry::Cell(c) if c.cca == "reno"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_shard_costs_only_its_own_records() {
        let dir = scratch("shard-stale");
        let fp = Fingerprint::of(&Scale::quick());
        let mut writers = create_sharded(&dir, &fp, &[], 2).unwrap();
        writers[0]
            .append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
            .unwrap();
        writers[1]
            .append(&Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0)))
            .unwrap();
        drop(writers);
        // Garble shard 1's header: that shard is from another campaign
        // now, but shard 0 must still be merged.
        let shard1 = shard_path(&dir, 1);
        let body = std::fs::read_to_string(&shard1).unwrap();
        std::fs::write(&shard1, body.replacen("greenenvy-campaign", "foreign", 1)).unwrap();
        let loaded = load_sharded(&dir, &fp).unwrap();
        assert_eq!(loaded.stale_shards, 1);
        assert_eq!(loaded.entries.len(), 1);
        assert!(matches!(&loaded.entries[0], Entry::Cell(c) if c.cca == "cubic"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_sharded_wipes_previous_wider_pools() {
        let dir = scratch("shard-wipe");
        let fp = Fingerprint::of(&Scale::quick());
        let mut writers = create_sharded(&dir, &fp, &[], 4).unwrap();
        for w in writers.iter_mut() {
            w.append(&Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0)))
                .unwrap();
        }
        drop(writers);
        // Recreate with a narrower pool: shard 003 must be gone, not
        // lingering to resurrect stale records on a later resume.
        let _ = create_sharded(&dir, &fp, &[], 2).unwrap();
        assert!(shard_path(&dir, 0).exists());
        assert!(shard_path(&dir, 1).exists());
        assert!(!shard_path(&dir, 2).exists());
        assert!(!shard_path(&dir, 3).exists());
        let loaded = load_sharded(&dir, &fp).unwrap();
        assert_eq!(loaded.shards, 2);
        assert!(loaded.entries.is_empty(), "fresh shards start empty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dedupe_prefers_cells_then_higher_attempt_counts() {
        let cell = Entry::Cell(stub_cell(CcaKind::Cubic, 1500, 1.0));
        let f2 = Entry::Failed(stub_failure(CcaKind::Cubic, 1500, 2));
        let f5 = Entry::Failed(stub_failure(CcaKind::Cubic, 1500, 5));
        let other = Entry::Cell(stub_cell(CcaKind::Reno, 3000, 2.0));
        // A cell beats any failure, regardless of order.
        let out = dedupe(vec![f5.clone(), cell.clone(), f2.clone()]);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], Entry::Cell(_)));
        // Among failures the higher cumulative attempt count survives.
        let out = dedupe(vec![f5.clone(), f2.clone(), other.clone()]);
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Entry::Failed(f) if f.attempts == 5));
        // First-seen key order is preserved.
        assert!(matches!(&out[1], Entry::Cell(c) if c.cca == "reno"));
        let _ = (cell, f2, f5, other);
    }

    #[test]
    fn quarantine_records_roundtrip() {
        use super::super::supervisor::AttemptRecord;
        let dir = scratch("quarantine");
        let path = quarantine_path(&dir);
        let fp = Fingerprint::of(&Scale::quick());
        let mut w = Writer::create(&path, &fp, &[]).unwrap();
        let rec = QuarantineRecord {
            cca: "cubic".into(),
            mtu: 1500,
            attempts: vec![
                AttemptRecord {
                    attempt: 1,
                    class: "panic".into(),
                    error: "poison".into(),
                },
                AttemptRecord {
                    attempt: 2,
                    class: "panic".into(),
                    error: "poison again".into(),
                },
            ],
        };
        w.append(&Entry::Quarantine(rec.clone())).unwrap();
        let loaded = load(&path, &fp).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        let Entry::Quarantine(q) = &loaded.entries[0] else {
            panic!("expected quarantine entry");
        };
        assert_eq!(q.cca, "cubic");
        assert_eq!(q.mtu, 1500);
        assert_eq!(q.attempts.len(), 2);
        assert_eq!(q.attempts[1].error, "poison again");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
