//! Durable campaign execution.
//!
//! The CCA × MTU measurement campaign behind Figures 5-8 is hours of
//! simulation at paper scale, which makes it exactly the kind of job
//! that dies at 90%: an OOM kill, a preempted node, a Ctrl-C. This
//! module makes the campaign *restartable and auditable* without
//! touching what it computes:
//!
//! * [`journal`] — an append-only, fsynced, hash-verified checkpoint
//!   journal; one record per completed cell.
//! * resume — [`CampaignOptions::resume`] re-runs only cells the
//!   journal cannot vouch for. Because cell results are bit-exact
//!   through JSON (shortest-roundtrip floats), a resumed campaign's
//!   matrix is byte-identical to an uninterrupted one.
//! * [`cancel`] — SIGINT/SIGTERM turn into a graceful drain: workers
//!   stop claiming cells, the journal is already flushed, and a partial
//!   matrix comes back.
//! * [`persist`] — atomic tmp-then-rename artifact writes, so no crash
//!   leaves a half-written result file.
//! * [`invariant`] — opt-in "paranoid mode" physics audits per
//!   repetition; zero cost when off.
//!
//! The work-stealing scheduling, salted-seed retry, and cell ordering
//! are identical to the plain [`crate::matrix`] entry points — in fact
//! [`crate::matrix::run_matrix_with_runner`] is now a thin wrapper over
//! [`run_campaign_with_runner`] with durability switched off.

pub mod artifacts;
pub mod cancel;
pub mod invariant;
pub mod journal;
pub mod persist;

pub use cancel::{install_signal_handlers, CancelToken};
pub use journal::{Fingerprint, JournalError};
pub use persist::{save_json_atomic, write_atomic, PersistError};

use crate::matrix::{
    run_cell_with, Cell, CellError, CellFailure, CellPolicy, Matrix, MATRIX_SCHEMA_VERSION, MTUS,
    RETRY_SEED_SALT,
};
use crate::scale::Scale;
use cca::CcaKind;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How a campaign should run. [`Default`] is exactly the historical
/// [`crate::matrix::run_matrix`] behaviour: all cores, no journal, no
/// deadline, no paranoia.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Worker threads (work-stealing; the result is schedule-invariant).
    pub threads: usize,
    /// Checkpoint journal path. `None` disables durability.
    pub journal: Option<PathBuf>,
    /// Reuse journaled cells instead of re-running them. Only cells
    /// whose journal records pass fingerprint + hash validation count.
    pub resume: bool,
    /// Per-cell wall-clock budget (covers all repetitions of the cell).
    /// A cell that blows it fails with [`CellError::DeadlineExceeded`]
    /// and gets the standard salted-seed retry.
    pub deadline: Option<Duration>,
    /// Run the [`invariant`] physics audit after every repetition.
    pub paranoid: bool,
    /// Cooperative cancellation; poll-checked between cells.
    pub cancel: CancelToken,
    /// Persist per-repetition observability artifacts (Perfetto trace,
    /// Prometheus snapshot, flight-ring dumps on failure) into this
    /// directory. `None` runs uninstrumented.
    pub trace_out: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            journal: None,
            resume: false,
            deadline: None,
            paranoid: false,
            cancel: CancelToken::new(),
            trace_out: None,
        }
    }
}

/// What a campaign did, beyond the matrix itself.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The (possibly partial) measurement matrix, in canonical order.
    pub matrix: Matrix,
    /// True when the campaign stopped early on a cancellation/signal.
    pub cancelled: bool,
    /// Cells reused from the journal without re-running.
    pub reused: usize,
    /// Cells executed (successfully or not) by this invocation.
    pub executed: usize,
    /// Cells never attempted because cancellation arrived first.
    pub skipped: usize,
}

/// A campaign-level failure. Cell failures don't land here (they're
/// carried in the matrix); this is for the durability machinery itself.
#[derive(Debug)]
pub enum CampaignError {
    /// The checkpoint journal could not be read or written.
    Journal(JournalError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "campaign journal failure: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Journal(e) => Some(e),
        }
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// Run the measurement campaign durably with the production cell runner.
pub fn run_campaign(scale: Scale, opts: CampaignOptions) -> Result<CampaignReport, CampaignError> {
    let policy = CellPolicy {
        wall_deadline: opts.deadline,
        paranoid: opts.paranoid,
        trace_out: opts.trace_out.clone(),
    };
    run_campaign_with_runner(scale, opts, move |cca, mtu, bytes, seeds| {
        run_cell_with(cca, mtu, bytes, seeds, policy.clone())
    })
}

/// [`run_campaign`] with a pluggable cell runner — the testing seam. The
/// deadline/paranoid options act inside the *production* runner; a
/// custom runner receives only `(cca, mtu, bytes, seeds)` and applies
/// whatever policy it likes.
pub fn run_campaign_with_runner<F>(
    scale: Scale,
    opts: CampaignOptions,
    runner: F,
) -> Result<CampaignReport, CampaignError>
where
    F: Fn(CcaKind, u32, u64, &[u64]) -> Result<Cell, CellError> + Sync,
{
    let seeds = scale.seeds();
    let jobs: Vec<(CcaKind, u32)> = CcaKind::ALL
        .iter()
        .flat_map(|&cca| MTUS.iter().map(move |&mtu| (cca, mtu)))
        .collect();

    // Resume: harvest validated cells from the journal, keyed by job.
    // Failed records are deliberately *not* reused — a resume is the
    // natural moment to give a failed cell another chance.
    let fingerprint = Fingerprint::of(&scale);
    let mut reused: Vec<(usize, Cell)> = Vec::new();
    if opts.resume {
        if let Some(path) = &opts.journal {
            let loaded = journal::load(path, &fingerprint)?;
            let mut by_key: HashMap<(&str, u32), Cell> = HashMap::new();
            for entry in loaded.entries {
                if let journal::Entry::Cell(c) = entry {
                    let cca = CcaKind::from_name(&c.cca);
                    if let Some(cca) = cca {
                        by_key.insert((cca.name(), c.mtu), c);
                    }
                }
            }
            for (i, &(cca, mtu)) in jobs.iter().enumerate() {
                if let Some(c) = by_key.remove(&(cca.name(), mtu)) {
                    reused.push((i, c));
                }
            }
        }
    }

    // (Re)create the journal: header + the reused records, atomically.
    // This compacts away torn/corrupt lines from a previous life and
    // stamps the current fingerprint.
    let writer: Option<Mutex<journal::Writer>> = match &opts.journal {
        Some(path) => {
            let keep: Vec<journal::Entry> = reused
                .iter()
                .map(|(_, c)| journal::Entry::Cell(c.clone()))
                .collect();
            Some(Mutex::new(journal::Writer::create(
                path,
                &fingerprint,
                &keep,
            )?))
        }
        None => None,
    };

    let have: Vec<bool> = {
        let mut have = vec![false; jobs.len()];
        for (i, _) in &reused {
            have[*i] = true;
        }
        have
    };
    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| !have[i]).collect();

    let threads = opts.threads.max(1).min(pending.len().max(1));
    let next = AtomicUsize::new(0);
    // First journal-append failure; trips cancellation so workers stop
    // burning CPU on cells whose completion can no longer be recorded.
    let journal_failure: Mutex<Option<JournalError>> = Mutex::new(None);

    let executed: Vec<(usize, Result<Cell, CellFailure>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let jobs = &jobs;
                let pending = &pending;
                let seeds = &seeds;
                let next = &next;
                let runner = &runner;
                let writer = &writer;
                let journal_failure = &journal_failure;
                let cancel = &opts.cancel;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        // The graceful-shutdown point: between cells, never
                        // inside one.
                        if cancel.is_cancelled() {
                            break;
                        }
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= pending.len() {
                            break;
                        }
                        let i = pending[k];
                        let (cca, mtu) = jobs[i];
                        let outcome = match runner(cca, mtu, scale.transfer_bytes, seeds) {
                            Ok(cell) => Ok(cell),
                            Err(first) => {
                                let retry_seeds: Vec<u64> =
                                    seeds.iter().map(|&s| s ^ RETRY_SEED_SALT).collect();
                                match runner(cca, mtu, scale.transfer_bytes, &retry_seeds) {
                                    Ok(cell) => Ok(cell),
                                    Err(second) => Err(CellFailure {
                                        cca: cca.name().to_string(),
                                        mtu,
                                        error: first.to_string(),
                                        retry_error: second.to_string(),
                                    }),
                                }
                            }
                        };
                        if let Some(w) = writer {
                            let entry = match &outcome {
                                Ok(cell) => journal::Entry::Cell(cell.clone()),
                                Err(failure) => journal::Entry::Failed(failure.clone()),
                            };
                            let result = w.lock().expect("journal lock").append(&entry);
                            if let Err(e) = result {
                                journal_failure
                                    .lock()
                                    .expect("journal failure lock")
                                    .get_or_insert(e);
                                cancel.cancel();
                            }
                        }
                        done.push((i, outcome));
                    }
                    done
                })
            })
            .collect();
        // Drain every worker before deciding the campaign's fate: a panic
        // in one must not hide the results (or failures) of the others.
        let mut collected = Vec::new();
        let mut worker_panics = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => collected.extend(part),
                Err(payload) => worker_panics.push(panic_text(payload.as_ref()).to_string()),
            }
        }
        if !worker_panics.is_empty() {
            panic!(
                "{} campaign worker(s) panicked: {}",
                worker_panics.len(),
                worker_panics.join(" | ")
            );
        }
        collected
    });

    if let Some(e) = journal_failure.into_inner().expect("journal failure lock") {
        return Err(e.into());
    }

    let reused_count = reused.len();
    let executed_count = executed.len();
    let mut indexed: Vec<(usize, Result<Cell, CellFailure>)> = reused
        .into_iter()
        .map(|(i, c)| (i, Ok(c)))
        .chain(executed)
        .collect();
    indexed.sort_by_key(|(i, _)| *i);

    let mut cells = Vec::new();
    let mut failed = Vec::new();
    for (_, outcome) in indexed {
        match outcome {
            Ok(cell) => cells.push(cell),
            Err(failure) => failed.push(failure),
        }
    }
    Ok(CampaignReport {
        matrix: Matrix {
            schema_version: MATRIX_SCHEMA_VERSION,
            transfer_bytes: scale.transfer_bytes,
            repetitions: scale.repetitions,
            seeds,
            cells,
            failed,
        },
        cancelled: opts.cancel.is_cancelled(),
        reused: reused_count,
        executed: executed_count,
        skipped: jobs.len() - reused_count - executed_count,
    })
}

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::stats::Summary;
    use std::sync::atomic::AtomicUsize;

    fn stub_cell(cca: CcaKind, mtu: u32) -> Cell {
        let xs = [mtu as f64, mtu as f64 * 0.5];
        Cell {
            cca: cca.name().to_string(),
            mtu,
            energy_j: Summary::of(&xs),
            power_w: Summary::of(&xs),
            fct_s: Summary::of(&xs),
            retx: Summary::of(&xs),
            goodput_gbps: Summary::of(&xs),
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("greenenvy-campaign-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const TOTAL: usize = 40; // 10 CCAs × 4 MTUs

    #[test]
    fn journal_free_campaign_matches_the_plain_matrix() {
        let run = |threads| {
            run_campaign_with_runner(
                Scale::quick(),
                CampaignOptions {
                    threads,
                    ..Default::default()
                },
                |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
            )
            .unwrap()
        };
        let report = run(4);
        assert_eq!(report.matrix.cells.len(), TOTAL);
        assert_eq!(report.executed, TOTAL);
        assert_eq!(report.reused, 0);
        assert_eq!(report.skipped, 0);
        assert!(!report.cancelled);
        let plain = crate::matrix::run_matrix_with_runner(Scale::quick(), 3, |cca, mtu, _b, _s| {
            Ok(stub_cell(cca, mtu))
        });
        assert_eq!(
            serde_json::to_string(&report.matrix).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "campaign and plain matrix agree bit-for-bit"
        );
    }

    #[test]
    fn pre_cancelled_campaign_does_no_work() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let calls = AtomicUsize::new(0);
        let report = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 4,
                cancel,
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(report.cancelled);
        assert_eq!(report.executed, 0);
        assert_eq!(report.skipped, TOTAL);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert!(report.matrix.cells.is_empty());
    }

    #[test]
    fn resume_reuses_journaled_cells_and_runs_only_the_rest() {
        let dir = scratch("resume");
        let journal = dir.join("campaign.jsonl");

        // First life: cancel after 7 cells.
        let cancel = CancelToken::new();
        let first_calls = AtomicUsize::new(0);
        let first = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 1,
                journal: Some(journal.clone()),
                cancel: cancel.clone(),
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                if first_calls.fetch_add(1, Ordering::SeqCst) + 1 >= 7 {
                    cancel.cancel();
                }
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(first.cancelled);
        assert_eq!(first.executed, 7);
        assert_eq!(first.skipped, TOTAL - 7);

        // Second life: resume. Exactly the un-journaled cells run.
        let second_calls = AtomicUsize::new(0);
        let second = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 4,
                journal: Some(journal.clone()),
                resume: true,
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                second_calls.fetch_add(1, Ordering::SeqCst);
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(!second.cancelled);
        assert_eq!(second.reused, 7);
        assert_eq!(second.executed, TOTAL - 7);
        assert_eq!(second_calls.load(Ordering::SeqCst), TOTAL - 7);

        // The merged matrix is bit-identical to an uninterrupted run.
        let uninterrupted = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&second.matrix).unwrap(),
            serde_json::to_string(&uninterrupted.matrix).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_resume_an_existing_journal_is_overwritten_not_reused() {
        let dir = scratch("fresh");
        let journal = dir.join("campaign.jsonl");
        let opts = || CampaignOptions {
            threads: 2,
            journal: Some(journal.clone()),
            ..Default::default()
        };
        let calls = AtomicUsize::new(0);
        run_campaign_with_runner(Scale::quick(), opts(), |cca, mtu, _b, _s| {
            Ok(stub_cell(cca, mtu))
        })
        .unwrap();
        let rerun = run_campaign_with_runner(Scale::quick(), opts(), |cca, mtu, _b, _s| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(stub_cell(cca, mtu))
        })
        .unwrap();
        assert_eq!(rerun.reused, 0);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            TOTAL,
            "no resume => every cell re-runs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_retries_journaled_failures() {
        let dir = scratch("refail");
        let journal = dir.join("campaign.jsonl");
        // First life: one cell fails terminally (both attempts).
        let first = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                journal: Some(journal.clone()),
                ..Default::default()
            },
            |cca, mtu, _b, seeds| {
                if (cca, mtu) == (CcaKind::Bbr, 3000) {
                    Err(CellError::Failed {
                        cca,
                        mtu,
                        seed: seeds[0],
                        message: "poisoned".into(),
                    })
                } else {
                    Ok(stub_cell(cca, mtu))
                }
            },
        )
        .unwrap();
        assert_eq!(first.matrix.failed.len(), 1);
        // Second life: the failure is re-attempted (and now succeeds);
        // the 39 healthy cells are reused.
        let second = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                journal: Some(journal.clone()),
                resume: true,
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap();
        assert_eq!(second.reused, TOTAL - 1);
        assert_eq!(second.executed, 1);
        assert!(second.matrix.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_journal_is_a_campaign_error_naming_the_path() {
        let err = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 1,
                journal: Some(PathBuf::from("/proc/greenenvy-no-such-dir/j.jsonl")),
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap_err();
        assert!(err.to_string().contains("greenenvy-no-such-dir"), "{err}");
    }
}
