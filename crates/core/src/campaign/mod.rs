//! Durable, supervised campaign execution.
//!
//! The CCA × MTU measurement campaign behind Figures 5-8 is hours of
//! simulation at paper scale, which makes it exactly the kind of job
//! that dies at 90%: an OOM kill, a preempted node, a Ctrl-C. This
//! module makes the campaign *restartable, supervised, and auditable*
//! without touching what it computes:
//!
//! * [`journal`] — an append-only, fsynced, hash-verified checkpoint
//!   journal; one record per completed cell. Fleet runs shard it one
//!   file per worker ([`CampaignOptions::journal_dir`]), so appends
//!   don't serialize behind a single fsync and a torn shard invalidates
//!   its own records, not the campaign.
//! * resume — [`CampaignOptions::resume`] re-runs only cells the
//!   journal cannot vouch for. Because cell results are bit-exact
//!   through JSON (shortest-roundtrip floats), a resumed campaign's
//!   matrix is byte-identical to an uninterrupted one.
//! * [`supervisor`] — the worker pool: typed [`RetryPolicy`] with
//!   claim-count exponential backoff, monotone seed salting across
//!   campaign lives, per-cell panic containment, poison-cell
//!   quarantine (`quarantine.jsonl` + [`SupervisionReport`]), and
//!   graceful degradation to in-memory checkpoints when the journal's
//!   disk gives out mid-run.
//! * [`cancel`] — SIGINT/SIGTERM turn into a graceful drain: workers
//!   stop claiming cells, the journal is already flushed, and a partial
//!   matrix comes back.
//! * [`persist`] — atomic tmp-then-rename artifact writes, so no crash
//!   leaves a half-written result file.
//! * [`invariant`] — opt-in "paranoid mode" physics audits per
//!   repetition; zero cost when off.
//!
//! The work-stealing scheduling, salted-seed retry, and cell ordering
//! are identical to the plain [`crate::matrix`] entry points — in fact
//! [`crate::matrix::run_matrix_with_runner`] is now a thin wrapper over
//! [`run_campaign_with_runner`] with durability switched off.

pub mod artifacts;
pub mod cancel;
pub mod invariant;
pub mod journal;
pub mod persist;
pub mod supervisor;

pub use cancel::{install_signal_handlers, CancelToken};
pub use journal::{Fingerprint, JournalError};
pub use persist::{save_json_atomic, write_atomic, PersistError};
pub use supervisor::{
    attempt_salt, seeds_for_attempt, AttemptRecord, QuarantineRecord, RetryPolicy,
    SupervisionReport,
};

use crate::matrix::{
    run_cell_with, Cell, CellError, CellFailure, CellPolicy, Matrix, MATRIX_SCHEMA_VERSION, MTUS,
};
use crate::scale::Scale;
use cca::CcaKind;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// How a campaign should run. [`Default`] is exactly the historical
/// [`crate::matrix::run_matrix`] behaviour: all cores, no journal, no
/// deadline, no paranoia, the classic one-salted-retry policy.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Worker threads (work-stealing; the result is schedule-invariant).
    pub threads: usize,
    /// Single-file checkpoint journal path. `None` disables durability.
    /// Ignored when `journal_dir` is set.
    pub journal: Option<PathBuf>,
    /// Sharded checkpoint journal directory: one fsynced JSONL per
    /// worker (`shard-000.jsonl`, …) plus `quarantine.jsonl`. Wins over
    /// `journal`. Prefer this for wide pools — per-worker shards keep
    /// fsyncs off each other's critical path and shrink the corruption
    /// blast radius to one shard.
    pub journal_dir: Option<PathBuf>,
    /// Reuse journaled cells instead of re-running them. Only cells
    /// whose journal records pass fingerprint + hash validation count.
    pub resume: bool,
    /// The retry schedule failing cells run under (journaled via the
    /// config fingerprint, so a resume replays the same schedule).
    pub retry: RetryPolicy,
    /// Per-cell wall-clock budget (covers all repetitions of the cell).
    /// A cell that blows it fails with [`CellError::DeadlineExceeded`]
    /// and re-enters the retry schedule like any other failure.
    pub deadline: Option<Duration>,
    /// Run the [`invariant`] physics audit after every repetition.
    pub paranoid: bool,
    /// Cooperative cancellation; poll-checked between cells.
    pub cancel: CancelToken,
    /// Persist per-repetition observability artifacts (Perfetto trace,
    /// Prometheus snapshot, flight-ring dumps on failure) into this
    /// directory. `None` runs uninstrumented.
    pub trace_out: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            journal: None,
            journal_dir: None,
            resume: false,
            retry: RetryPolicy::default(),
            deadline: None,
            paranoid: false,
            cancel: CancelToken::new(),
            trace_out: None,
        }
    }
}

/// What a campaign did, beyond the matrix itself.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The (possibly partial) measurement matrix, in canonical order.
    pub matrix: Matrix,
    /// True when the campaign stopped early on a cancellation/signal.
    pub cancelled: bool,
    /// Cells reused from the journal without re-running.
    pub reused: usize,
    /// Cells that reached a terminal outcome (success or quarantine)
    /// in this invocation.
    pub executed: usize,
    /// Cells never finished because cancellation arrived first.
    pub skipped: usize,
    /// The supervision story: retry counts, quarantined poison cells,
    /// degradation, and the supervisor metrics snapshot.
    pub supervision: SupervisionReport,
}

/// A campaign-level failure. Cell failures don't land here (they're
/// carried in the matrix); this is for the campaign machinery itself.
#[derive(Debug)]
pub enum CampaignError {
    /// The checkpoint journal could not be created or read. (Append
    /// failures mid-run degrade instead — see
    /// [`SupervisionReport::degraded`].)
    Journal(JournalError),
    /// A worker *thread* died outside the per-cell panic containment.
    Worker(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "campaign journal failure: {e}"),
            CampaignError::Worker(e) => write!(f, "campaign worker failure: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Journal(e) => Some(e),
            CampaignError::Worker(_) => None,
        }
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// The quarantine sibling of a single-file journal
/// (`campaign.jsonl` → `campaign.quarantine.jsonl`). Sharded journals
/// keep theirs inside the directory instead.
fn quarantine_sibling(journal: &Path) -> PathBuf {
    let stem = journal
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("campaign");
    journal.with_file_name(format!("{stem}.quarantine.jsonl"))
}

/// Run the measurement campaign durably with the production cell runner.
pub fn run_campaign(scale: Scale, opts: CampaignOptions) -> Result<CampaignReport, CampaignError> {
    let policy = CellPolicy {
        wall_deadline: opts.deadline,
        paranoid: opts.paranoid,
        trace_out: opts.trace_out.clone(),
    };
    run_campaign_with_runner(scale, opts, move |cca, mtu, bytes, seeds| {
        run_cell_with(cca, mtu, bytes, seeds, policy.clone())
    })
}

/// [`run_campaign`] with a pluggable cell runner — the testing seam. The
/// deadline/paranoid options act inside the *production* runner; a
/// custom runner receives only `(cca, mtu, bytes, seeds)` and applies
/// whatever policy it likes. A runner that panics is contained by the
/// supervisor and treated as a failed attempt.
pub fn run_campaign_with_runner<F>(
    scale: Scale,
    opts: CampaignOptions,
    runner: F,
) -> Result<CampaignReport, CampaignError>
where
    F: Fn(CcaKind, u32, u64, &[u64]) -> Result<Cell, CellError> + Sync,
{
    let seeds = scale.seeds();
    let jobs: Vec<(CcaKind, u32)> = CcaKind::ALL
        .iter()
        .flat_map(|&cca| MTUS.iter().map(move |&mtu| (cca, mtu)))
        .collect();

    let policy = opts.retry;
    let fingerprint = Fingerprint::for_policy(&scale, &policy);
    let sharded_dir = opts.journal_dir.clone();
    let single = if sharded_dir.is_some() {
        None
    } else {
        opts.journal.clone()
    };

    // Resume: harvest validated entries, keyed by job. Completed cells
    // are reused; failure records are *not* (a resume is the natural
    // moment to give a failed cell another chance) but their cumulative
    // attempt counters thread through, so the re-attempt continues the
    // monotone seed-salt sequence instead of restarting it.
    let mut reused: Vec<(usize, Cell)> = Vec::new();
    let mut prior_attempts: BTreeMap<usize, u32> = BTreeMap::new();
    let mut keep: Vec<journal::Entry> = Vec::new();
    if opts.resume {
        let entries = if let Some(dir) = &sharded_dir {
            journal::load_sharded(dir, &fingerprint)?.entries
        } else if let Some(path) = &single {
            journal::dedupe(journal::load(path, &fingerprint)?.entries)
        } else {
            Vec::new()
        };
        let mut cells: HashMap<(String, u32), Cell> = HashMap::new();
        let mut fails: HashMap<(String, u32), CellFailure> = HashMap::new();
        for entry in entries {
            match entry {
                journal::Entry::Cell(c) => {
                    cells.insert((c.cca.clone(), c.mtu), c);
                }
                journal::Entry::Failed(f) => {
                    fails.insert((f.cca.clone(), f.mtu), f);
                }
                journal::Entry::Quarantine(_) => {}
            }
        }
        for (i, &(cca, mtu)) in jobs.iter().enumerate() {
            let key = (cca.name().to_string(), mtu);
            if let Some(c) = cells.remove(&key) {
                keep.push(journal::Entry::Cell(c.clone()));
                reused.push((i, c));
            } else if let Some(f) = fails.remove(&key) {
                prior_attempts.insert(i, f.attempts);
                keep.push(journal::Entry::Failed(f));
            }
        }
    }

    let have: Vec<bool> = {
        let mut have = vec![false; jobs.len()];
        for (i, _) in &reused {
            have[*i] = true;
        }
        have
    };
    let pending = jobs.len() - reused.len();
    let threads = opts.threads.max(1).min(pending.max(1));

    // (Re)create the journal(s): header + the surviving records,
    // atomically. This compacts away torn/corrupt lines from a previous
    // life and stamps the current fingerprint. Creation failures are
    // fatal — a campaign that never had durability is a configuration
    // error; only *append* failures later degrade.
    let journals = if let Some(dir) = &sharded_dir {
        let writers = journal::create_sharded(dir, &fingerprint, &keep, threads)?;
        supervisor::Journals::Sharded(writers.into_iter().map(Mutex::new).collect())
    } else if let Some(path) = &single {
        // The quarantine sibling describes the previous life; wipe it so
        // this life's (possibly empty) quarantine story is the only one.
        let _ = std::fs::remove_file(quarantine_sibling(path));
        supervisor::Journals::Single(Mutex::new(journal::Writer::create(
            path,
            &fingerprint,
            &keep,
        )?))
    } else {
        supervisor::Journals::None
    };
    let quarantine_file = if let Some(dir) = &sharded_dir {
        Some(journal::quarantine_path(dir))
    } else {
        single.as_deref().map(quarantine_sibling)
    };
    let quarantine = supervisor::QuarantineSink::new(quarantine_file, fingerprint.clone());

    let fresh: Vec<(usize, u32)> = (0..jobs.len())
        .filter(|&i| !have[i])
        .map(|i| (i, prior_attempts.get(&i).copied().unwrap_or(0) + 1))
        .collect();

    let outcome = supervisor::Supervisor {
        jobs: &jobs,
        fresh,
        prior_attempts,
        seeds: &seeds,
        transfer_bytes: scale.transfer_bytes,
        threads,
        policy,
        cancel: opts.cancel.clone(),
        journals,
        quarantine,
        reused: reused.len(),
    }
    .run(&runner);

    if !outcome.worker_panics.is_empty() {
        return Err(CampaignError::Worker(format!(
            "{} campaign worker(s) panicked: {}",
            outcome.worker_panics.len(),
            outcome.worker_panics.join(" | ")
        )));
    }

    let reused_count = reused.len();
    let executed_count = outcome.executed.len();
    let mut indexed: Vec<(usize, Result<Cell, CellFailure>)> = reused
        .into_iter()
        .map(|(i, c)| (i, Ok(c)))
        .chain(outcome.executed)
        .collect();
    indexed.sort_by_key(|(i, _)| *i);

    let mut cells = Vec::new();
    let mut failed = Vec::new();
    for (_, cell_outcome) in indexed {
        match cell_outcome {
            Ok(cell) => cells.push(cell),
            Err(failure) => failed.push(failure),
        }
    }
    Ok(CampaignReport {
        matrix: Matrix {
            schema_version: MATRIX_SCHEMA_VERSION,
            transfer_bytes: scale.transfer_bytes,
            repetitions: scale.repetitions,
            seeds,
            cells,
            failed,
        },
        cancelled: opts.cancel.is_cancelled(),
        reused: reused_count,
        executed: executed_count,
        skipped: jobs.len() - reused_count - executed_count,
        supervision: SupervisionReport {
            policy,
            retries: outcome.retries,
            quarantined: outcome.quarantined,
            degraded: outcome.degraded,
            metrics: outcome.metrics,
        },
    })
}

/// Best-effort text of a caught panic payload. String payloads (the
/// overwhelmingly common case) come through verbatim; common scalar
/// payloads are rendered via `Display`; anything else at least says so
/// explicitly instead of silently flattening to one constant.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    macro_rules! display_payloads {
        ($($ty:ty),*) => {
            $(if let Some(v) = payload.downcast_ref::<$ty>() {
                return format!("{v} (panic payload type {})", stringify!($ty));
            })*
        };
    }
    display_payloads!(i32, u32, i64, u64, usize, isize, f64, bool, char);
    "non-string panic payload".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::stats::Summary;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn stub_cell(cca: CcaKind, mtu: u32) -> Cell {
        let xs = [mtu as f64, mtu as f64 * 0.5];
        Cell {
            cca: cca.name().to_string(),
            mtu,
            energy_j: Summary::of(&xs),
            power_w: Summary::of(&xs),
            fct_s: Summary::of(&xs),
            retx: Summary::of(&xs),
            goodput_gbps: Summary::of(&xs),
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("greenenvy-campaign-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const TOTAL: usize = 40; // 10 CCAs × 4 MTUs

    #[test]
    fn journal_free_campaign_matches_the_plain_matrix() {
        let run = |threads| {
            run_campaign_with_runner(
                Scale::quick(),
                CampaignOptions {
                    threads,
                    ..Default::default()
                },
                |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
            )
            .unwrap()
        };
        let report = run(4);
        assert_eq!(report.matrix.cells.len(), TOTAL);
        assert_eq!(report.executed, TOTAL);
        assert_eq!(report.reused, 0);
        assert_eq!(report.skipped, 0);
        assert!(!report.cancelled);
        assert_eq!(report.supervision.retries, 0);
        assert!(report.supervision.quarantined.is_empty());
        assert!(report.supervision.degraded.is_none());
        let plain = crate::matrix::run_matrix_with_runner(Scale::quick(), 3, |cca, mtu, _b, _s| {
            Ok(stub_cell(cca, mtu))
        });
        assert_eq!(
            serde_json::to_string(&report.matrix).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "campaign and plain matrix agree bit-for-bit"
        );
    }

    #[test]
    fn pre_cancelled_campaign_does_no_work() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let calls = AtomicUsize::new(0);
        let report = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 4,
                cancel,
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(report.cancelled);
        assert_eq!(report.executed, 0);
        assert_eq!(report.skipped, TOTAL);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert!(report.matrix.cells.is_empty());
    }

    #[test]
    fn resume_reuses_journaled_cells_and_runs_only_the_rest() {
        let dir = scratch("resume");
        let journal = dir.join("campaign.jsonl");

        // First life: cancel after 7 cells.
        let cancel = CancelToken::new();
        let first_calls = AtomicUsize::new(0);
        let first = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 1,
                journal: Some(journal.clone()),
                cancel: cancel.clone(),
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                if first_calls.fetch_add(1, Ordering::SeqCst) + 1 >= 7 {
                    cancel.cancel();
                }
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(first.cancelled);
        assert_eq!(first.executed, 7);
        assert_eq!(first.skipped, TOTAL - 7);

        // Second life: resume. Exactly the un-journaled cells run.
        let second_calls = AtomicUsize::new(0);
        let second = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 4,
                journal: Some(journal.clone()),
                resume: true,
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                second_calls.fetch_add(1, Ordering::SeqCst);
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(!second.cancelled);
        assert_eq!(second.reused, 7);
        assert_eq!(second.executed, TOTAL - 7);
        assert_eq!(second_calls.load(Ordering::SeqCst), TOTAL - 7);

        // The merged matrix is bit-identical to an uninterrupted run.
        let uninterrupted = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&second.matrix).unwrap(),
            serde_json::to_string(&uninterrupted.matrix).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_resume_an_existing_journal_is_overwritten_not_reused() {
        let dir = scratch("fresh");
        let journal = dir.join("campaign.jsonl");
        let opts = || CampaignOptions {
            threads: 2,
            journal: Some(journal.clone()),
            ..Default::default()
        };
        let calls = AtomicUsize::new(0);
        run_campaign_with_runner(Scale::quick(), opts(), |cca, mtu, _b, _s| {
            Ok(stub_cell(cca, mtu))
        })
        .unwrap();
        let rerun = run_campaign_with_runner(Scale::quick(), opts(), |cca, mtu, _b, _s| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(stub_cell(cca, mtu))
        })
        .unwrap();
        assert_eq!(rerun.reused, 0);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            TOTAL,
            "no resume => every cell re-runs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_retries_journaled_failures() {
        let dir = scratch("refail");
        let journal = dir.join("campaign.jsonl");
        // First life: one cell fails terminally (both attempts).
        let first = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                journal: Some(journal.clone()),
                ..Default::default()
            },
            |cca, mtu, _b, seeds| {
                if (cca, mtu) == (CcaKind::Bbr, 3000) {
                    Err(CellError::Failed {
                        cca,
                        mtu,
                        seed: seeds[0],
                        message: "poisoned".into(),
                    })
                } else {
                    Ok(stub_cell(cca, mtu))
                }
            },
        )
        .unwrap();
        assert_eq!(first.matrix.failed.len(), 1);
        assert_eq!(first.matrix.failed[0].attempts, 2);
        assert_eq!(first.supervision.quarantined.len(), 1);
        // Second life: the failure is re-attempted (and now succeeds);
        // the 39 healthy cells are reused.
        let second = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                journal: Some(journal.clone()),
                resume: true,
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap();
        assert_eq!(second.reused, TOTAL - 1);
        assert_eq!(second.executed, 1);
        assert!(second.matrix.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_failures_continue_the_monotone_salt_sequence() {
        // A cell that burned attempts 1-2 in life 1 must run attempts
        // 3-4 (fresh salts) in life 2 — not re-run salts it already
        // failed on. The journaled attempt counter threads this through.
        let dir = scratch("monotone");
        let journal = dir.join("campaign.jsonl");
        let base = Scale::quick().seeds();
        let observed: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let poison = (CcaKind::Bbr, 3000);
        let runner = |cca: CcaKind, mtu: u32, _b: u64, seeds: &[u64]| {
            if (cca, mtu) == poison {
                observed.lock().unwrap().push(seeds[0]);
                Err(CellError::Failed {
                    cca,
                    mtu,
                    seed: seeds[0],
                    message: "always".into(),
                })
            } else {
                Ok(stub_cell(cca, mtu))
            }
        };
        let opts = |resume| CampaignOptions {
            threads: 2,
            journal: Some(journal.clone()),
            resume,
            ..Default::default()
        };
        run_campaign_with_runner(Scale::quick(), opts(false), runner).unwrap();
        run_campaign_with_runner(Scale::quick(), opts(true), runner).unwrap();
        let seen = observed.lock().unwrap().clone();
        let want: Vec<u64> = (1..=4).map(|n| base[0] ^ attempt_salt(n)).collect();
        assert_eq!(seen, want, "4 attempts across 2 lives, each salt fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_cells_are_contained_and_quarantined() {
        // A runner that panics outright must not take down the campaign:
        // the supervisor catches it per-cell, burns the retry budget,
        // and quarantines the poison cell with its coordinates.
        let report = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 3,
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                if (cca, mtu) == (CcaKind::Cubic, 1500) {
                    panic!("poison cell detonated");
                }
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert_eq!(report.matrix.failed.len(), 1);
        assert_eq!(report.matrix.cells.len(), TOTAL - 1);
        let q = &report.supervision.quarantined[0];
        assert_eq!((q.cca.as_str(), q.mtu), ("cubic", 1500));
        assert_eq!(q.attempts.len(), 2, "both budgeted attempts recorded");
        for a in &q.attempts {
            assert_eq!(a.class, "panic");
            assert!(a.error.contains("poison cell detonated"), "{}", a.error);
            assert!(a.error.contains("cubic @ mtu 1500"), "{}", a.error);
        }
        assert_eq!(report.supervision.retries, 1);
    }

    #[test]
    fn non_string_panic_payloads_keep_their_display() {
        let report = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                if (cca, mtu) == (CcaKind::Reno, 9000) {
                    std::panic::panic_any(42_i32);
                }
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        let q = &report.supervision.quarantined[0];
        assert!(
            q.attempts[0].error.contains("42"),
            "integer payload rendered: {}",
            q.attempts[0].error
        );
        assert!(q.attempts[0].error.contains("reno @ mtu 9000"));
    }

    #[test]
    fn retry_policy_budget_is_respected() {
        let calls = AtomicUsize::new(0);
        let report = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                retry: RetryPolicy {
                    max_attempts: 4,
                    backoff_base: 1,
                },
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                if (cca, mtu) == (CcaKind::Vegas, 6000) {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Err(CellError::Failed {
                        cca,
                        mtu,
                        seed: 0,
                        message: "always".into(),
                    })
                } else {
                    Ok(stub_cell(cca, mtu))
                }
            },
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 4, "exactly max_attempts");
        assert_eq!(report.supervision.retries, 3);
        assert_eq!(report.matrix.failed[0].attempts, 4);
        let q = &report.supervision.quarantined[0];
        assert_eq!(
            q.attempts.iter().map(|a| a.attempt).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn sharded_campaign_matches_single_journal_byte_for_byte() {
        let dir = scratch("sharded-match");
        let run = |opts: CampaignOptions| {
            run_campaign_with_runner(Scale::quick(), opts, |cca, mtu, _b, _s| {
                Ok(stub_cell(cca, mtu))
            })
            .unwrap()
        };
        let single = run(CampaignOptions {
            threads: 3,
            journal: Some(dir.join("single.jsonl")),
            ..Default::default()
        });
        let sharded = run(CampaignOptions {
            threads: 3,
            journal_dir: Some(dir.join("shards")),
            ..Default::default()
        });
        assert_eq!(
            serde_json::to_string(&single.matrix).unwrap(),
            serde_json::to_string(&sharded.matrix).unwrap()
        );
        assert!(journal::shard_path(&dir.join("shards"), 0).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_resume_reuses_across_shards() {
        let dir = scratch("sharded-resume");
        let shards = dir.join("journal");
        let cancel = CancelToken::new();
        let first_calls = AtomicUsize::new(0);
        let first = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 3,
                journal_dir: Some(shards.clone()),
                cancel: cancel.clone(),
                ..Default::default()
            },
            |cca, mtu, _b, _s| {
                if first_calls.fetch_add(1, Ordering::SeqCst) + 1 >= 9 {
                    cancel.cancel();
                }
                Ok(stub_cell(cca, mtu))
            },
        )
        .unwrap();
        assert!(first.cancelled);
        assert!(first.executed >= 9);
        let second = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 4,
                journal_dir: Some(shards.clone()),
                resume: true,
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap();
        assert_eq!(second.reused, first.executed);
        assert_eq!(second.executed, TOTAL - first.executed);
        let uninterrupted = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 2,
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&second.matrix).unwrap(),
            serde_json::to_string(&uninterrupted.matrix).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_journal_is_a_campaign_error_naming_the_path() {
        let err = run_campaign_with_runner(
            Scale::quick(),
            CampaignOptions {
                threads: 1,
                journal: Some(PathBuf::from("/proc/greenenvy-no-such-dir/j.jsonl")),
                ..Default::default()
            },
            |cca, mtu, _b, _s| Ok(stub_cell(cca, mtu)),
        )
        .unwrap_err();
        assert!(err.to_string().contains("greenenvy-no-such-dir"), "{err}");
    }
}
