//! Cooperative cancellation for long campaigns.
//!
//! A [`CancelToken`] is a shared flag the work-stealing campaign runner
//! polls between cells. [`install_signal_handlers`] wires SIGINT/SIGTERM
//! to a process-global token so an operator's Ctrl-C (or a scheduler's
//! TERM) turns into a graceful drain — journal flushed, partial matrix
//! emitted — instead of a mid-write kill.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheaply-cloneable cancellation flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested (on this token or any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }
}

/// Set by the signal handler. Kept separate from any token so handler
/// installation is process-global and tokens stay plain atomics.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// True once a SIGINT/SIGTERM has been observed (handlers must have been
/// installed first).
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod sys {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // std links libc on unix; declaring `signal` directly avoids a
    // dependency the offline build environment doesn't have.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is async-signal-safe; everything else (the
        // journal flush, the partial emit) happens on the main thread
        // when the runner polls the flag.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// No signal story off unix: the token still works programmatically.
    pub fn install() {}
}

/// Install SIGINT/SIGTERM handlers that trip every [`CancelToken`], and
/// return a token observing them. Safe to call more than once.
pub fn install_signal_handlers() -> CancelToken {
    sys::install();
    CancelToken::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }
}
