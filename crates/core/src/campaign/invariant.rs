//! The paranoid-mode invariant checker.
//!
//! Opt-in physics audits over a finished [`ScenarioOutcome`]. Every law
//! here is something the simulator *must* satisfy by construction, so a
//! violation always means a bug (or memory corruption) — never a tuning
//! problem. The checks are pure arithmetic over counters the scenario
//! already collects: when paranoid mode is off, nothing here runs and
//! the hot path pays nothing.
//!
//! The laws:
//! 1. **Frame conservation** — every frame handed to the network is
//!    accounted for: delivered, discarded as corrupt, dropped by the
//!    fault layer, or dropped at a queue. Exact at quiescence
//!    ([`RunOutcome::Drained`]); an inequality otherwise (frames may
//!    still be in flight).
//! 2. **Energy floor** — a sender can never burn less than idle power
//!    over the measurement window.
//! 3. **Byte accounting** — a flow cannot ack more than it asked to
//!    send, nor more than its segments could carry.
//! 4. **Monotone time** — flows finish after they start, and the
//!    simulation clock ends at or after the measurement window.

use energy::calibration::P_IDLE_W;
use netsim::engine::RunOutcome;
use netsim::packet::HEADER_BYTES;
use workload::scenario::ScenarioOutcome;

/// A broken invariant: which law, and the numbers that broke it.
#[derive(Clone, Debug)]
pub struct Violation(String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated: {}", self.0)
    }
}

impl std::error::Error for Violation {}

/// Relative slack for floating-point comparisons (the RAPL counter
/// quantizes to 61 µJ; exact equality on energies is not meaningful).
const F64_SLACK: f64 = 1e-6;

/// Audit one scenario outcome against every law. `mtu` is the
/// scenario's MTU (bounds each segment's payload).
pub fn check(out: &ScenarioOutcome, mtu: u32) -> Result<(), Violation> {
    check_conservation(out)?;
    check_energy_floor(out)?;
    check_byte_accounting(out, mtu)?;
    check_monotone_time(out)
}

fn check_conservation(out: &ScenarioOutcome) -> Result<(), Violation> {
    let sent = out.originated_pkts + out.injected_dups;
    let accounted =
        out.delivered_pkts + out.corrupt_discards + out.injected_drops + out.dropped_pkts;
    if out.run_outcome == RunOutcome::Drained {
        if sent != accounted {
            return Err(Violation(format!(
                "frame conservation at quiescence: originated {} + dup {} != \
                 delivered {} + corrupt {} + injected-drop {} + queue-drop {}",
                out.originated_pkts,
                out.injected_dups,
                out.delivered_pkts,
                out.corrupt_discards,
                out.injected_drops,
                out.dropped_pkts,
            )));
        }
    } else if accounted > sent {
        // Before quiescence frames may be in flight, so only the
        // direction is checkable: nothing can arrive that wasn't sent.
        return Err(Violation(format!(
            "frame over-delivery: {accounted} frames accounted for but only {sent} entered",
        )));
    }
    Ok(())
}

fn check_energy_floor(out: &ScenarioOutcome) -> Result<(), Violation> {
    let floor = P_IDLE_W * out.window.as_secs_f64();
    for r in &out.sender_readings {
        if r.joules < floor * (1.0 - F64_SLACK) - F64_SLACK {
            return Err(Violation(format!(
                "sender energy below the idle floor: {} J over {:.6} s window \
                 (idle alone is {floor} J)",
                r.joules,
                out.window.as_secs_f64(),
            )));
        }
    }
    Ok(())
}

fn check_byte_accounting(out: &ScenarioOutcome, mtu: u32) -> Result<(), Violation> {
    let mss = mtu.saturating_sub(HEADER_BYTES) as u64;
    for r in &out.reports {
        if r.bytes_acked > r.bytes {
            return Err(Violation(format!(
                "flow {:?}: {} bytes acked out of {} requested",
                r.flow, r.bytes_acked, r.bytes,
            )));
        }
        if r.bytes_acked > r.segs_sent * mss {
            return Err(Violation(format!(
                "flow {:?}: {} bytes acked but {} segments × {mss} B mss \
                 could carry only {}",
                r.flow,
                r.bytes_acked,
                r.segs_sent,
                r.segs_sent * mss,
            )));
        }
    }
    Ok(())
}

fn check_monotone_time(out: &ScenarioOutcome) -> Result<(), Violation> {
    for r in &out.reports {
        if r.completed_at < r.started_at {
            return Err(Violation(format!(
                "flow {:?} completed at {} ns before starting at {} ns",
                r.flow,
                r.completed_at.as_nanos(),
                r.started_at.as_nanos(),
            )));
        }
    }
    if out.sim_end.as_nanos() < out.window.as_nanos() {
        return Err(Violation(format!(
            "simulation clock ended at {} ns inside a {} ns measurement window",
            out.sim_end.as_nanos(),
            out.window.as_nanos(),
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::CcaKind;
    use netsim::units::MB;
    use workload::prelude::*;

    fn outcome(mtu: u32, seed: u64) -> ScenarioOutcome {
        let scenario =
            Scenario::new(mtu, vec![FlowSpec::bulk(CcaKind::Cubic, 20 * MB)]).with_seed(seed);
        workload::scenario::run(&scenario).expect("scenario completes")
    }

    #[test]
    fn a_clean_run_passes_every_law() {
        let out = outcome(1500, 7);
        check(&out, 1500).expect("clean run satisfies the physics");
    }

    #[test]
    fn a_faulty_run_still_passes() {
        let scenario = Scenario::new(3000, vec![FlowSpec::bulk(CcaKind::Reno, 20 * MB)])
            .with_seed(11)
            .with_fault(
                netsim::fault::FaultSpec::random_loss(1e-4)
                    .with_corruption(1e-4)
                    .with_duplication(1e-4),
            );
        let out = workload::scenario::run(&scenario).expect("faulty scenario completes");
        check(&out, 3000).expect("fault layer keeps the books balanced");
    }

    #[test]
    fn cooked_counters_are_caught() {
        let mut out = outcome(1500, 7);
        out.delivered_pkts += 1;
        let err = check(&out, 1500).unwrap_err();
        assert!(err.to_string().contains("conservation"), "{err}");
    }

    #[test]
    fn impossible_energy_is_caught() {
        let mut out = outcome(1500, 7);
        out.sender_readings[0].joules = 0.001;
        let err = check(&out, 1500).unwrap_err();
        assert!(err.to_string().contains("idle floor"), "{err}");
    }

    #[test]
    fn over_acked_flow_is_caught() {
        let mut out = outcome(1500, 7);
        out.reports[0].bytes_acked = out.reports[0].bytes + 1;
        let err = check(&out, 1500).unwrap_err();
        assert!(err.to_string().contains("acked"), "{err}");
    }

    #[test]
    fn segment_capacity_bound_is_enforced() {
        let mut out = outcome(1500, 7);
        out.reports[0].segs_sent /= 2;
        let err = check(&out, 1500).unwrap_err();
        assert!(err.to_string().contains("mss"), "{err}");
    }

    #[test]
    fn backwards_clock_is_caught() {
        let mut out = outcome(1500, 7);
        out.reports[0].completed_at = netsim::time::SimTime::ZERO;
        // started_at > 0 for a real flow, so this clock runs backwards.
        assert!(out.reports[0].started_at.as_nanos() > 0);
        let err = check(&out, 1500).unwrap_err();
        assert!(err.to_string().contains("before starting"), "{err}");
    }
}
