//! Fleet-grade campaign supervision.
//!
//! The worker pool behind [`super::run_campaign_with_runner`]. The
//! original campaign loop gave every failing cell exactly one salted
//! retry, funnelled every worker through one journal mutex, and treated
//! a journal write error as fatal. At fleet scale (the ROADMAP's
//! ~1M-cell matrices) each of those is a liability, so the supervisor
//! owns the full failure story:
//!
//! * **typed retry policy** — [`RetryPolicy`] caps attempts per cell
//!   and spaces re-attempts with exponential backoff measured in *claim
//!   counts* (deterministic and schedule-meaningful) instead of
//!   wall-clock sleeps; the policy is part of the journal fingerprint,
//!   so a resume provably replays the same schedule.
//! * **monotone seed salting** — attempt `n` of a cell runs on
//!   `seed ^ attempt_salt(n)`, and the cumulative attempt counter rides
//!   in the journal's failure records, so a resumed campaign keeps
//!   exploring *fresh* seed trajectories instead of re-running the salt
//!   it already failed on.
//! * **per-cell panic containment** — a panicking runner is caught,
//!   classified, and retried like any other failure; it cannot take the
//!   worker (and with it the campaign) down.
//! * **poison-cell quarantine** — a cell that exhausts its budget moves
//!   to `quarantine.jsonl` with its full attempt history
//!   ([`QuarantineRecord`]); the campaign keeps going.
//! * **graceful degradation** — a journal *append* failure (disk full,
//!   EROFS) downgrades from fatal to degraded mode: the campaign keeps
//!   computing with in-memory checkpoints, raises the
//!   `campaign_degraded` gauge, and the campaign binary exits with a
//!   distinct code. (Journal *creation* failures are still fatal — a
//!   campaign that never had durability is a configuration error.)

use super::cancel::CancelToken;
use super::journal::{Entry, Fingerprint, JournalError, Writer};
use crate::matrix::{Cell, CellError, CellFailure, RETRY_SEED_SALT};
use cca::CcaKind;
use obs::{labels, MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock a mutex, recovering the data from a poisoned lock. Supervisor
/// state stays consistent across a poisoning panic because every
/// critical section is a handful of plain writes.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The deterministic bounded retry schedule a campaign runs under.
///
/// `max_attempts` is the per-*life* budget: a resumed campaign gives a
/// previously failed cell a fresh budget, but starts its attempt
/// numbering (and therefore its seed salts) where the journal says the
/// last life stopped. Backoff is expressed in claim counts, not time:
/// after failed attempt `n`, the cell becomes eligible again once
/// `backoff_base << (n-1)` further cells have been claimed by the pool
/// (waived when no other work is left, so backoff never deadlocks a
/// tail of retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts a cell gets per campaign life (min 1).
    pub max_attempts: u32,
    /// Backoff base in claim counts; 0 disables backoff entirely.
    pub backoff_base: u32,
}

impl Default for RetryPolicy {
    /// The historical campaign behaviour: one fresh-salt retry,
    /// re-claimed immediately.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            backoff_base: 0,
        }
    }
}

impl RetryPolicy {
    /// Human-readable spec recorded in journal headers (and hashed into
    /// the fingerprint): changing the policy changes which seed
    /// trajectories failures explore, so it re-keys the campaign.
    pub fn spec(&self) -> String {
        format!(
            "max_attempts={},backoff={}",
            self.max_attempts.max(1),
            self.backoff_base
        )
    }

    /// Claims to wait out after failed attempt `n` (1-based). Shift is
    /// clamped so a pathological attempt counter cannot overflow.
    pub fn backoff_claims(&self, failed_attempt: u32) -> u64 {
        (self.backoff_base as u64) << failed_attempt.saturating_sub(1).min(20)
    }
}

const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed salt for attempt `n` (1-based). Monotone across campaign
/// lives: attempt 1 is the unsalted seed schedule, attempt 2 keeps the
/// historical [`RETRY_SEED_SALT`] (so existing goldens hold), and every
/// later attempt gets a distinct splitmix-derived salt — a cell that
/// failed attempts 1-2 in one life resumes at attempt 3 on a trajectory
/// it has never tried.
pub fn attempt_salt(attempt: u32) -> u64 {
    match attempt {
        0 | 1 => 0,
        2 => RETRY_SEED_SALT,
        n => splitmix64(RETRY_SEED_SALT ^ n as u64),
    }
}

/// The seed schedule attempt `n` of a cell runs on.
pub fn seeds_for_attempt(seeds: &[u64], attempt: u32) -> Vec<u64> {
    let salt = attempt_salt(attempt);
    seeds.iter().map(|&s| s ^ salt).collect()
}

/// One failed attempt of a cell, as recorded in its quarantine entry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// Cumulative attempt number (1-based, monotone across lives).
    pub attempt: u32,
    /// Failure class: `"failed"`, `"deadline"`, `"invariant"`, or
    /// `"panic"`.
    pub class: String,
    /// The failure text (panic payload or `CellError` display), which
    /// names the cell coordinates and seed.
    pub error: String,
}

/// A poison cell: every attempt of its budget failed, so it was moved
/// to `quarantine.jsonl` and the campaign continued without it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// CCA name.
    pub cca: String,
    /// MTU in bytes.
    pub mtu: u32,
    /// Every failed attempt *this campaign life* observed, in order.
    pub attempts: Vec<AttemptRecord>,
}

impl QuarantineRecord {
    /// The highest attempt number recorded (cumulative across lives).
    pub fn last_attempt(&self) -> u32 {
        self.attempts.last().map(|a| a.attempt).unwrap_or(0)
    }
}

/// The supervision section of a [`super::CampaignReport`].
#[derive(Clone, Debug)]
pub struct SupervisionReport {
    /// The retry schedule the campaign ran under.
    pub policy: RetryPolicy,
    /// Re-attempts issued this invocation (across all cells).
    pub retries: u64,
    /// Poison cells quarantined this invocation, in canonical job order.
    pub quarantined: Vec<QuarantineRecord>,
    /// `Some(reason)` when the campaign degraded to in-memory
    /// checkpoints after a journal append failure. The matrix is still
    /// complete and correct — but nothing after the failure is durable,
    /// so a resume would re-run those cells.
    pub degraded: Option<String>,
    /// Supervisor metrics (`campaign_cell_retries_total`,
    /// `campaign_quarantined_total`, `campaign_degraded`, …), frozen at
    /// campaign end.
    pub metrics: MetricsSnapshot,
}

/// Where cell completions are checkpointed.
pub(super) enum Journals {
    /// No durability (the plain-matrix path).
    None,
    /// The classic single shared journal.
    Single(Mutex<Writer>),
    /// One shard per worker: appends never cross-contend, and each
    /// worker's fsyncs queue behind its own file only.
    Sharded(Vec<Mutex<Writer>>),
    /// Test-only: every append fails, exercising degraded mode without
    /// needing a genuinely full disk.
    #[cfg(test)]
    Failing,
}

/// The lazily created quarantine journal. Lazy so a healthy campaign
/// leaves no empty `quarantine.jsonl` behind to alarm anyone.
pub(super) struct QuarantineSink {
    path: Option<PathBuf>,
    fingerprint: Fingerprint,
    writer: Mutex<Option<Writer>>,
}

impl QuarantineSink {
    pub(super) fn new(path: Option<PathBuf>, fingerprint: Fingerprint) -> QuarantineSink {
        QuarantineSink {
            path,
            fingerprint,
            writer: Mutex::new(None),
        }
    }

    fn append(&self, record: &QuarantineRecord) -> Result<(), JournalError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut slot = relock(&self.writer);
        if slot.is_none() {
            *slot = Some(Writer::create(path, &self.fingerprint, &[])?);
        }
        if let Some(writer) = slot.as_mut() {
            writer.append(&Entry::Quarantine(record.clone()))?;
        }
        Ok(())
    }
}

/// A queued re-attempt.
struct Ticket {
    job: usize,
    attempt: u32,
    /// Pool-wide claim count at which this ticket becomes eligible.
    eligible_at: u64,
}

struct QueueState {
    /// Never-attempted jobs with their starting attempt numbers
    /// (`prior journaled attempts + 1`), claimed front to back.
    fresh: Vec<(usize, u32)>,
    cursor: usize,
    /// Backoff'd re-attempts waiting to become eligible.
    retries: Vec<Ticket>,
    /// Total claims handed out; the backoff clock.
    claims: u64,
    /// Cells currently being executed by some worker.
    in_flight: usize,
}

/// The supervised work queue: fresh cells plus backoff'd retries,
/// claimed work-stealing style. The backoff clock is the pool-wide
/// claim counter, so the schedule is a function of the claim sequence,
/// not of wall time.
struct Queue {
    state: Mutex<QueueState>,
    wake: Condvar,
}

impl Queue {
    fn new(fresh: Vec<(usize, u32)>) -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                fresh,
                cursor: 0,
                retries: Vec::new(),
                claims: 0,
                in_flight: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// Claim the next `(job, attempt)`, or `None` when the campaign is
    /// drained or cancelled. Eligible retries win over fresh work
    /// (earliest eligibility, then lowest job index — deterministic);
    /// backoff is waived once no fresh work remains and nothing is in
    /// flight, so a retry tail can never deadlock the pool.
    fn claim(&self, cancel: &CancelToken) -> Option<(usize, u32)> {
        let mut st = relock(&self.state);
        loop {
            if cancel.is_cancelled() {
                self.wake.notify_all();
                return None;
            }
            let fresh_left = st.cursor < st.fresh.len();
            let drained = !fresh_left && st.in_flight == 0;
            let mut pick: Option<usize> = None;
            for i in 0..st.retries.len() {
                let t = &st.retries[i];
                if t.eligible_at > st.claims && !drained {
                    continue;
                }
                let better = match pick {
                    None => true,
                    Some(p) => {
                        (t.eligible_at, t.job) < (st.retries[p].eligible_at, st.retries[p].job)
                    }
                };
                if better {
                    pick = Some(i);
                }
            }
            if let Some(i) = pick {
                let t = st.retries.swap_remove(i);
                st.claims += 1;
                st.in_flight += 1;
                return Some((t.job, t.attempt));
            }
            if fresh_left {
                let (job, attempt) = st.fresh[st.cursor];
                st.cursor += 1;
                st.claims += 1;
                st.in_flight += 1;
                return Some((job, attempt));
            }
            if st.retries.is_empty() && st.in_flight == 0 {
                self.wake.notify_all();
                return None;
            }
            // Ineligible retries exist, or peers are in flight and might
            // enqueue one. The timeout doubles as the cancel poll.
            let (guard, _timeout) = self
                .wake
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }

    /// Re-queue a failed cell for attempt `next_attempt`, eligible after
    /// `delta` more claims.
    fn retry(&self, job: usize, next_attempt: u32, delta: u64) {
        let mut st = relock(&self.state);
        st.in_flight -= 1;
        let eligible_at = st.claims + delta;
        st.retries.push(Ticket {
            job,
            attempt: next_attempt,
            eligible_at,
        });
        drop(st);
        self.wake.notify_all();
    }

    /// A claimed cell reached a terminal outcome (success or quarantine).
    fn complete(&self) {
        let mut st = relock(&self.state);
        st.in_flight -= 1;
        drop(st);
        self.wake.notify_all();
    }
}

/// Everything the supervisor needs to run a campaign's pending cells.
pub(super) struct Supervisor<'a> {
    /// The canonical CCA × MTU job list.
    pub jobs: &'a [(CcaKind, u32)],
    /// Pending `(job index, starting attempt)` pairs in canonical order.
    pub fresh: Vec<(usize, u32)>,
    /// Journaled attempt counts from previous lives, by job index.
    pub prior_attempts: BTreeMap<usize, u32>,
    /// The unsalted seed schedule.
    pub seeds: &'a [u64],
    /// Bytes per transfer.
    pub transfer_bytes: u64,
    /// Worker pool width.
    pub threads: usize,
    /// The retry schedule.
    pub policy: RetryPolicy,
    /// Cooperative cancellation.
    pub cancel: CancelToken,
    /// Completion checkpoints.
    pub journals: Journals,
    /// Poison-cell sink.
    pub quarantine: QuarantineSink,
    /// Cells reused from the journal (for the metrics snapshot).
    pub reused: usize,
}

/// What the pool produced.
pub(super) struct Supervised {
    /// Terminal outcomes, unordered, by job index.
    pub executed: Vec<(usize, Result<Cell, CellFailure>)>,
    /// Quarantined poison cells, sorted by job index.
    pub quarantined: Vec<QuarantineRecord>,
    /// Re-attempts issued.
    pub retries: u64,
    /// Degradation reason, if a journal append failed.
    pub degraded: Option<String>,
    /// Worker *thread* panics (distinct from caught cell panics; should
    /// be impossible, but a supervisor that hides its own crashes is
    /// worse than none).
    pub worker_panics: Vec<String>,
    /// Supervisor metrics frozen at pool drain.
    pub metrics: MetricsSnapshot,
}

impl Supervisor<'_> {
    /// Note a journal append failure: first one wins, flips the
    /// `campaign_degraded` gauge, and announces loudly. Journaling stops
    /// but the campaign keeps computing.
    fn degrade(
        degraded: &Mutex<Option<String>>,
        metrics: &Mutex<MetricsRegistry>,
        error: &JournalError,
    ) {
        let mut slot = relock(degraded);
        if slot.is_none() {
            *slot = Some(error.to_string());
            relock(metrics).gauge_set("campaign_degraded", labels([]), 1.0);
            eprintln!(
                "campaign: journal append failed ({error}); \
                 degrading to in-memory checkpoints — results stay \
                 correct but are no longer crash-durable"
            );
        }
    }

    /// Checkpoint an entry to this worker's journal, degrading (not
    /// failing) on I/O errors.
    fn checkpoint(
        &self,
        worker: usize,
        entry: &Entry,
        degraded: &Mutex<Option<String>>,
        metrics: &Mutex<MetricsRegistry>,
    ) {
        if relock(degraded).is_some() {
            return; // already degraded: in-memory only
        }
        let result = match &self.journals {
            Journals::None => Ok(()),
            Journals::Single(w) => relock(w).append(entry),
            Journals::Sharded(ws) => match ws.get(worker) {
                Some(w) => relock(w).append(entry),
                None => Ok(()),
            },
            #[cfg(test)]
            Journals::Failing => Err(JournalError {
                path: PathBuf::from("/test/failing-journal"),
                source: std::io::Error::other("injected append failure"),
            }),
        };
        if let Err(e) = result {
            Supervisor::degrade(degraded, metrics, &e);
        }
    }

    /// Run the pool to drain (or cancellation).
    pub(super) fn run<F>(self, runner: &F) -> Supervised
    where
        F: Fn(CcaKind, u32, u64, &[u64]) -> Result<Cell, CellError> + Sync,
    {
        let queue = Queue::new(self.fresh.clone());
        let metrics = Mutex::new(MetricsRegistry::new());
        if self.reused > 0 {
            relock(&metrics).counter_add(
                "campaign_cells_reused_total",
                labels([]),
                self.reused as u64,
            );
        }
        let degraded: Mutex<Option<String>> = Mutex::new(None);
        let history: Mutex<BTreeMap<usize, Vec<AttemptRecord>>> = Mutex::new(BTreeMap::new());
        let quarantined: Mutex<Vec<(usize, QuarantineRecord)>> = Mutex::new(Vec::new());
        let retries = AtomicU64::new(0);

        let (executed, worker_panics) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|worker| {
                    let this = &self;
                    let queue = &queue;
                    let metrics = &metrics;
                    let degraded = &degraded;
                    let history = &history;
                    let quarantined = &quarantined;
                    let retries = &retries;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, Result<Cell, CellFailure>)> = Vec::new();
                        while let Some((job, attempt)) = queue.claim(&this.cancel) {
                            let (cca, mtu) = this.jobs[job];
                            let seeds = seeds_for_attempt(this.seeds, attempt);
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                runner(cca, mtu, this.transfer_bytes, &seeds)
                            }));
                            let (class, error) = match caught {
                                Ok(Ok(cell)) => {
                                    this.checkpoint(
                                        worker,
                                        &Entry::Cell(cell.clone()),
                                        degraded,
                                        metrics,
                                    );
                                    relock(metrics).counter_add(
                                        "campaign_cells_completed_total",
                                        labels([]),
                                        1,
                                    );
                                    done.push((job, Ok(cell)));
                                    queue.complete();
                                    continue;
                                }
                                Ok(Err(e)) => (e.class(), e.to_string()),
                                Err(payload) => (
                                    "panic",
                                    format!(
                                        "{} @ mtu {mtu} seed {}: panicked: {}",
                                        cca.name(),
                                        seeds.first().copied().unwrap_or(0),
                                        super::panic_text(payload.as_ref()),
                                    ),
                                ),
                            };
                            relock(history).entry(job).or_default().push(AttemptRecord {
                                attempt,
                                class: class.to_string(),
                                error: error.clone(),
                            });
                            let start = this.prior_attempts.get(&job).copied().unwrap_or(0);
                            let spent = attempt.saturating_sub(start);
                            if spent < this.policy.max_attempts.max(1) {
                                retries.fetch_add(1, Ordering::Relaxed);
                                relock(metrics).counter_add(
                                    "campaign_cell_retries_total",
                                    labels([("cca", cca.name().to_string())]),
                                    1,
                                );
                                queue.retry(job, attempt + 1, this.policy.backoff_claims(spent));
                            } else {
                                // Budget exhausted: quarantine the poison
                                // cell and move on.
                                let attempts = relock(history).remove(&job).unwrap_or_default();
                                let record = QuarantineRecord {
                                    cca: cca.name().to_string(),
                                    mtu,
                                    attempts,
                                };
                                if let Err(e) = this.quarantine.append(&record) {
                                    Supervisor::degrade(degraded, metrics, &e);
                                }
                                let failure = CellFailure {
                                    cca: cca.name().to_string(),
                                    mtu,
                                    error: record
                                        .attempts
                                        .first()
                                        .map(|a| a.error.clone())
                                        .unwrap_or_default(),
                                    retry_error: record
                                        .attempts
                                        .last()
                                        .map(|a| a.error.clone())
                                        .unwrap_or_default(),
                                    attempts: attempt,
                                };
                                this.checkpoint(
                                    worker,
                                    &Entry::Failed(failure.clone()),
                                    degraded,
                                    metrics,
                                );
                                relock(metrics).counter_add(
                                    "campaign_quarantined_total",
                                    labels([("cca", cca.name().to_string())]),
                                    1,
                                );
                                relock(quarantined).push((job, record));
                                done.push((job, Err(failure)));
                                queue.complete();
                            }
                        }
                        done
                    })
                })
                .collect();
            // Drain every worker before deciding the campaign's fate: a
            // crash in one must not hide the results of the others.
            let mut collected = Vec::new();
            let mut panics = Vec::new();
            for h in handles {
                match h.join() {
                    Ok(part) => collected.extend(part),
                    Err(payload) => panics.push(super::panic_text(payload.as_ref())),
                }
            }
            (collected, panics)
        });

        let mut quarantined = relock(&quarantined).drain(..).collect::<Vec<_>>();
        quarantined.sort_by_key(|(job, _)| *job);
        let degraded = relock(&degraded).take();
        // The registry clocks at sim instant 0: the supervisor has no
        // sim clock, and wall time has no place in a deterministic
        // artifact.
        let metrics = relock(&metrics).snapshot(0);
        Supervised {
            executed,
            quarantined: quarantined.into_iter().map(|(_, q)| q).collect(),
            retries: retries.load(Ordering::Relaxed),
            degraded,
            worker_panics,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_salts_are_monotone_and_distinct() {
        assert_eq!(attempt_salt(1), 0, "attempt 1 is the unsalted schedule");
        assert_eq!(
            attempt_salt(2),
            RETRY_SEED_SALT,
            "attempt 2 keeps the historical salt"
        );
        let mut seen = std::collections::BTreeSet::new();
        for n in 1..=16 {
            assert!(seen.insert(attempt_salt(n)), "salt {n} repeats");
        }
    }

    #[test]
    fn seeds_for_attempt_salts_every_seed() {
        let seeds = [10, 20, 30];
        assert_eq!(seeds_for_attempt(&seeds, 1), vec![10, 20, 30]);
        assert_eq!(
            seeds_for_attempt(&seeds, 2),
            vec![
                10 ^ RETRY_SEED_SALT,
                20 ^ RETRY_SEED_SALT,
                30 ^ RETRY_SEED_SALT
            ]
        );
        let third = seeds_for_attempt(&seeds, 3);
        assert_ne!(third, seeds_for_attempt(&seeds, 2));
        assert_ne!(third, seeds_for_attempt(&seeds, 4));
    }

    #[test]
    fn backoff_doubles_per_failed_attempt() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base: 2,
        };
        assert_eq!(p.backoff_claims(1), 2);
        assert_eq!(p.backoff_claims(2), 4);
        assert_eq!(p.backoff_claims(3), 8);
        let off = RetryPolicy {
            max_attempts: 5,
            backoff_base: 0,
        };
        assert_eq!(off.backoff_claims(3), 0, "base 0 disables backoff");
    }

    #[test]
    fn policy_spec_is_stable_text() {
        assert_eq!(RetryPolicy::default().spec(), "max_attempts=2,backoff=0");
        assert_eq!(
            RetryPolicy {
                max_attempts: 4,
                backoff_base: 3
            }
            .spec(),
            "max_attempts=4,backoff=3"
        );
    }

    #[test]
    fn queue_respects_backoff_while_other_work_exists() {
        let q = Queue::new(vec![(0, 1), (1, 1), (2, 1)]);
        let cancel = CancelToken::new();
        let first = q.claim(&cancel).unwrap();
        assert_eq!(first, (0, 1));
        // Job 0 fails; eligible only after 2 more claims.
        q.retry(0, 2, 2);
        assert_eq!(q.claim(&cancel).unwrap(), (1, 1), "fresh work first");
        assert_eq!(q.claim(&cancel).unwrap(), (2, 1));
        q.complete();
        q.complete();
        // Backoff satisfied (claims advanced past eligibility).
        assert_eq!(q.claim(&cancel).unwrap(), (0, 2));
        q.complete();
        assert!(q.claim(&cancel).is_none(), "drained");
    }

    #[test]
    fn queue_waives_backoff_when_nothing_else_remains() {
        let q = Queue::new(vec![(7, 1)]);
        let cancel = CancelToken::new();
        assert_eq!(q.claim(&cancel).unwrap(), (7, 1));
        // Enormous backoff — but it's the only cell left, so the waiver
        // must hand it straight back instead of deadlocking.
        q.retry(7, 2, 1_000_000);
        assert_eq!(q.claim(&cancel).unwrap(), (7, 2));
        q.complete();
        assert!(q.claim(&cancel).is_none());
    }

    #[test]
    fn cancelled_queue_stops_claiming() {
        let q = Queue::new(vec![(0, 1), (1, 1)]);
        let cancel = CancelToken::new();
        assert!(q.claim(&cancel).is_some());
        cancel.cancel();
        assert!(q.claim(&cancel).is_none(), "cancel wins over fresh work");
    }

    fn test_cell(cca: CcaKind, mtu: u32) -> Cell {
        let xs = [1.0, 2.0];
        Cell {
            cca: cca.name().to_string(),
            mtu,
            energy_j: analysis::stats::Summary::of(&xs),
            power_w: analysis::stats::Summary::of(&xs),
            fct_s: analysis::stats::Summary::of(&xs),
            retx: analysis::stats::Summary::of(&xs),
            goodput_gbps: analysis::stats::Summary::of(&xs),
        }
    }

    #[test]
    fn append_failure_degrades_instead_of_killing_the_campaign() {
        let jobs = vec![(CcaKind::Cubic, 1500), (CcaKind::Reno, 3000)];
        let out = Supervisor {
            jobs: &jobs,
            fresh: vec![(0, 1), (1, 1)],
            prior_attempts: BTreeMap::new(),
            seeds: &[1, 2],
            transfer_bytes: 1,
            threads: 2,
            policy: RetryPolicy::default(),
            cancel: CancelToken::new(),
            journals: Journals::Failing,
            quarantine: QuarantineSink::new(None, Fingerprint::of(&crate::scale::Scale::quick())),
            reused: 0,
        }
        .run(&|cca, mtu, _b, _s| Ok(test_cell(cca, mtu)));
        assert_eq!(
            out.executed.len(),
            2,
            "both cells computed despite the dead journal"
        );
        assert!(out.executed.iter().all(|(_, r)| r.is_ok()));
        let reason = out.degraded.expect("degraded mode engaged");
        assert!(reason.contains("injected append failure"), "{reason}");
        assert_eq!(
            out.metrics.gauge("campaign_degraded", &obs::Labels::new()),
            Some(1.0),
            "the loud gauge is raised"
        );
        assert!(out.worker_panics.is_empty());
    }

    #[test]
    fn quarantine_sink_is_lazy() {
        let dir = std::env::temp_dir().join(format!("greenenvy-qsink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.jsonl");
        let fp = Fingerprint::of(&crate::scale::Scale::quick());
        let sink = QuarantineSink::new(Some(path.clone()), fp);
        assert!(!path.exists(), "no file until the first quarantine");
        sink.append(&QuarantineRecord {
            cca: "cubic".into(),
            mtu: 1500,
            attempts: vec![],
        })
        .unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
