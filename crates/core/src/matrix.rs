//! The shared CCA × MTU measurement matrix behind Figures 5-8.
//!
//! The paper's §4.3-4.5 figures all come from one campaign: transmit a
//! fixed volume with each of the ten CCAs at each of four MTUs, ten times
//! each, recording energy, power, completion time, and retransmissions.
//! [`run_matrix`] executes that campaign once; the figure modules render
//! different projections of it.

use crate::scale::Scale;
use analysis::stats::Summary;
use cca::CcaKind;
use serde::{Deserialize, Serialize};
use workload::prelude::*;

/// The paper's MTU sweep (§4.4).
pub const MTUS: [u32; 4] = [1500, 3000, 6000, 9000];

/// Version stamp written into every serialized [`Matrix`]. Bump when the
/// result layout (or the meaning of a field) changes; loaders reject
/// mismatches instead of misreading old files.
pub const MATRIX_SCHEMA_VERSION: u32 = 1;

/// Seed perturbation for the one automatic retry a failed cell gets.
/// XORed into every seed so the retry explores a different random
/// trajectory while staying a pure function of the original schedule.
pub(crate) const RETRY_SEED_SALT: u64 = 0x5EED_CAFE_0B57_AC1E;

/// One repetition of one cell failed, with enough context to re-run it.
#[derive(Clone, Debug)]
pub enum CellError {
    /// The scenario returned an error, the flow aborted, or the
    /// simulator panicked outright.
    Failed {
        /// The algorithm the cell was measuring.
        cca: CcaKind,
        /// The MTU the cell was measuring.
        mtu: u32,
        /// The seed of the repetition that failed.
        seed: u64,
        /// What went wrong (scenario error or panic text).
        message: String,
    },
    /// The cell blew its per-cell wall-clock budget
    /// ([`CellPolicy::wall_deadline`]).
    DeadlineExceeded {
        /// The algorithm the cell was measuring.
        cca: CcaKind,
        /// The MTU the cell was measuring.
        mtu: u32,
        /// The seed of the repetition that was running when time ran out.
        seed: u64,
        /// The budget the whole cell had.
        budget: std::time::Duration,
    },
    /// Paranoid mode caught the simulator breaking one of its own laws
    /// (see [`crate::campaign::invariant`]).
    InvariantViolation {
        /// The algorithm the cell was measuring.
        cca: CcaKind,
        /// The MTU the cell was measuring.
        mtu: u32,
        /// The seed of the repetition that broke the law.
        seed: u64,
        /// Which law, and the numbers that broke it.
        detail: String,
    },
}

impl CellError {
    /// The algorithm of the failing cell.
    pub fn cca(&self) -> CcaKind {
        match self {
            CellError::Failed { cca, .. }
            | CellError::DeadlineExceeded { cca, .. }
            | CellError::InvariantViolation { cca, .. } => *cca,
        }
    }

    /// The MTU of the failing cell.
    pub fn mtu(&self) -> u32 {
        match self {
            CellError::Failed { mtu, .. }
            | CellError::DeadlineExceeded { mtu, .. }
            | CellError::InvariantViolation { mtu, .. } => *mtu,
        }
    }

    /// Stable failure-class tag, as recorded in quarantine attempt
    /// history (caught panics use `"panic"`).
    pub fn class(&self) -> &'static str {
        match self {
            CellError::Failed { .. } => "failed",
            CellError::DeadlineExceeded { .. } => "deadline",
            CellError::InvariantViolation { .. } => "invariant",
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Failed {
                cca,
                mtu,
                seed,
                message,
            } => {
                write!(f, "{} @ mtu {mtu} seed {seed}: {message}", cca.name())
            }
            CellError::DeadlineExceeded {
                cca,
                mtu,
                seed,
                budget,
            } => write!(
                f,
                "{} @ mtu {mtu} seed {seed}: cell deadline of {budget:?} exceeded",
                cca.name()
            ),
            CellError::InvariantViolation {
                cca,
                mtu,
                seed,
                detail,
            } => {
                write!(f, "{} @ mtu {mtu} seed {seed}: {detail}", cca.name())
            }
        }
    }
}

impl std::error::Error for CellError {}

/// A cell that exhausted its retry budget, as recorded in the emitted
/// (partial) matrix and in journal `failed` records. A plain struct
/// because the vendored serde derive only handles structs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellFailure {
    /// Algorithm name.
    pub cca: String,
    /// MTU in bytes.
    pub mtu: u32,
    /// The first failure's description (includes the seed).
    pub error: String,
    /// The last attempt's failure description.
    pub retry_error: String,
    /// Cumulative attempts spent on this cell, across campaign lives.
    /// Journaled so a resume continues the monotone seed-salt sequence
    /// (attempt `n` runs on `seed ^ attempt_salt(n)`) instead of
    /// re-running salts that already failed.
    pub attempts: u32,
}

/// One (CCA, MTU) cell, summarized over repetitions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Algorithm name.
    pub cca: String,
    /// MTU in bytes.
    pub mtu: u32,
    /// Sender energy over the experiment window (J).
    pub energy_j: Summary,
    /// Average sender power (W).
    pub power_w: Summary,
    /// Flow completion time (s) — the paper's "iperf time".
    pub fct_s: Summary,
    /// Retransmitted segments.
    pub retx: Summary,
    /// Mean goodput (Gb/s).
    pub goodput_gbps: Summary,
}

impl Cell {
    /// The algorithm of this cell.
    pub fn kind(&self) -> CcaKind {
        CcaKind::from_name(&self.cca).expect("cell names come from the registry")
    }
}

/// The full campaign result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Matrix {
    /// Result-file layout version ([`MATRIX_SCHEMA_VERSION`]). Files
    /// from before versioning lack the field, fail to deserialize, and
    /// are re-run rather than misread.
    pub schema_version: u32,
    /// Bytes per transfer the campaign ran at.
    pub transfer_bytes: u64,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// The exact seed list every cell ran with. Stored so cached results
    /// are invalidated when the seed schedule changes, not only when the
    /// scale's size parameters do.
    pub seeds: Vec<u64>,
    /// All cells, ordered by `MTUS` within the paper's Figure-5 CCA order.
    /// Cells that failed (after a retry) are absent; see `failed`.
    pub cells: Vec<Cell>,
    /// Cells that failed their run *and* the automatic retry. A non-empty
    /// list means the matrix is partial: present cells are still valid.
    pub failed: Vec<CellFailure>,
}

impl Matrix {
    /// The cell for a given algorithm and MTU.
    pub fn cell(&self, cca: CcaKind, mtu: u32) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.cca == cca.name() && c.mtu == mtu)
    }

    /// All cells at one MTU, in campaign order.
    pub fn at_mtu(&self, mtu: u32) -> Vec<&Cell> {
        self.cells.iter().filter(|c| c.mtu == mtu).collect()
    }

    /// True when every cell of the campaign produced a result.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Per-cell execution policy: the durability-layer knobs that apply
/// inside a single cell. [`Default`] (no deadline, no paranoia, no
/// tracing) is the historical behaviour.
#[derive(Clone, Debug, Default)]
pub struct CellPolicy {
    /// Wall-clock budget for the whole cell (all repetitions share it).
    pub wall_deadline: Option<std::time::Duration>,
    /// Audit every repetition with [`crate::campaign::invariant::check`].
    pub paranoid: bool,
    /// Persist per-repetition observability artifacts (Perfetto trace,
    /// Prometheus snapshot, and — on failure — the flight-ring dump)
    /// into this directory. `None` runs uninstrumented.
    pub trace_out: Option<std::path::PathBuf>,
}

/// Run one (CCA, MTU) cell with the default [`CellPolicy`].
///
/// A repetition that fails — whether the scenario returns an error or
/// the simulator panics outright — surfaces as a [`CellError`] naming
/// the exact `(cca, mtu, seed)` instead of killing the campaign.
pub fn run_cell(cca: CcaKind, mtu: u32, bytes: u64, seeds: &[u64]) -> Result<Cell, CellError> {
    run_cell_with(cca, mtu, bytes, seeds, CellPolicy::default())
}

/// [`run_cell`] under an explicit policy: an optional wall-clock budget
/// shared by the cell's repetitions (the unspent remainder rolls into
/// each next repetition), and optional paranoid-mode physics audits.
pub fn run_cell_with(
    cca: CcaKind,
    mtu: u32,
    bytes: u64,
    seeds: &[u64],
    policy: CellPolicy,
) -> Result<Cell, CellError> {
    let deadline = policy
        .wall_deadline
        .map(|budget| (std::time::Instant::now() + budget, budget));
    let mut energy = Vec::new();
    let mut power = Vec::new();
    let mut fct = Vec::new();
    let mut retx = Vec::new();
    let mut goodput = Vec::new();
    for &seed in seeds {
        let mut scenario = Scenario::new(mtu, vec![FlowSpec::bulk(cca, bytes)]).with_seed(seed);
        if policy.trace_out.is_some() {
            scenario = scenario
                .with_observability()
                .with_trace(netsim::time::SimDuration::from_millis(10));
        }
        if let Some((at, budget)) = deadline {
            let remaining = at.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(CellError::DeadlineExceeded {
                    cca,
                    mtu,
                    seed,
                    budget,
                });
            }
            scenario = scenario.with_wall_deadline(remaining);
        }
        let cell_err = |message: String| CellError::Failed {
            cca,
            mtu,
            seed,
            message,
        };
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            workload::scenario::run(&scenario)
        }))
        .map_err(|payload| cell_err(crate::campaign::panic_text(payload.as_ref())))?
        .map_err(|e| match e {
            ScenarioError::DeadlineExceeded { budget: _, .. } => CellError::DeadlineExceeded {
                cca,
                mtu,
                seed,
                // Report the *cell's* budget, not the remainder this
                // repetition happened to inherit.
                budget: deadline.map(|(_, b)| b).unwrap_or_default(),
            },
            other => cell_err(other.to_string()),
        })?;
        if policy.paranoid {
            crate::campaign::invariant::check(&out, mtu).map_err(|v| {
                CellError::InvariantViolation {
                    cca,
                    mtu,
                    seed,
                    detail: v.to_string(),
                }
            })?;
        }
        let r = &out.reports[0];
        if let (Some(dir), Some(report)) = (&policy.trace_out, &out.obs) {
            let label = format!("{}_mtu{}_seed{}", cca.name(), mtu, seed);
            crate::campaign::artifacts::persist_cell_obs(
                dir,
                &label,
                report,
                !r.outcome.is_completed(),
            )
            .map_err(|e| cell_err(e.to_string()))?;
        }
        if !r.outcome.is_completed() {
            return Err(cell_err(format!("flow {}", r.outcome)));
        }
        energy.push(out.sender_energy_j);
        power.push(out.average_sender_power_w());
        fct.push(r.fct.as_secs_f64());
        retx.push(r.retransmits as f64);
        goodput.push(r.mean_goodput.gbps());
    }
    Ok(Cell {
        cca: cca.name().to_string(),
        mtu,
        energy_j: Summary::of(&energy),
        power_w: Summary::of(&power),
        fct_s: Summary::of(&fct),
        retx: Summary::of(&retx),
        goodput_gbps: Summary::of(&goodput),
    })
}

/// Run the whole campaign at the given scale. Cells are independent
/// simulations, so they run across all available cores.
pub fn run_matrix(scale: Scale) -> Matrix {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_matrix_with_threads(scale, threads)
}

/// [`run_matrix`] with an explicit worker count (determinism tests pin
/// it; the campaign result must not depend on the thread schedule).
///
/// Workers pull the next unclaimed cell off a shared atomic counter
/// (work stealing) rather than taking a fixed stride: cell costs vary by
/// ~6× across MTUs (a 1500-byte-MTU transfer pushes six times the
/// packets of a 9000-byte one), so a static split leaves workers idle
/// behind whoever drew the expensive cells.
pub fn run_matrix_with_threads(scale: Scale, threads: usize) -> Matrix {
    run_matrix_with_runner(scale, threads, |cca, mtu, bytes, seeds| {
        run_cell(cca, mtu, bytes, seeds)
    })
}

/// [`run_matrix_with_threads`] with a pluggable cell runner — the
/// testing seam the failure-handling tests poison individual cells
/// through. Production paths always pass [`run_cell`].
///
/// A cell whose run fails is retried under the default
/// [`crate::campaign::RetryPolicy`] — one more attempt, on a perturbed
/// seed schedule (`seed ^ RETRY_SEED_SALT`); if the budget runs out,
/// the campaign carries on and the cell is recorded in
/// [`Matrix::failed`], so one poisoned configuration costs its own cell
/// and nothing else.
pub fn run_matrix_with_runner<F>(scale: Scale, threads: usize, runner: F) -> Matrix
where
    F: Fn(CcaKind, u32, u64, &[u64]) -> Result<Cell, CellError> + Sync,
{
    let opts = crate::campaign::CampaignOptions {
        threads,
        ..Default::default()
    };
    crate::campaign::run_campaign_with_runner(scale, opts, runner)
        .expect("no journal configured and cell panics are contained, so the campaign machinery cannot fail")
        .matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    #[test]
    fn cell_summarizes_repetitions() {
        let cell = run_cell(CcaKind::Cubic, 9000, 100 * MB, &[1, 2]).unwrap();
        assert_eq!(cell.energy_j.n, 2);
        assert!(cell.energy_j.mean > 0.0);
        assert!(cell.power_w.mean > 21.49, "active sender above idle");
        assert!(cell.goodput_gbps.mean > 8.0);
        assert_eq!(cell.kind(), CcaKind::Cubic);
    }

    #[test]
    fn matrix_lookup() {
        let m = Matrix {
            schema_version: MATRIX_SCHEMA_VERSION,
            transfer_bytes: 1,
            repetitions: 1,
            seeds: vec![1],
            cells: vec![
                run_cell(CcaKind::Reno, 9000, 50 * MB, &[1]).unwrap(),
                run_cell(CcaKind::Reno, 1500, 50 * MB, &[1]).unwrap(),
            ],
            failed: Vec::new(),
        };
        assert!(m.is_complete());
        assert!(m.cell(CcaKind::Reno, 9000).is_some());
        assert!(m.cell(CcaKind::Cubic, 9000).is_none());
        assert_eq!(m.at_mtu(1500).len(), 1);
    }

    /// A synthetic cell so runner-seam tests don't pay for simulations.
    fn stub_cell(cca: CcaKind, mtu: u32) -> Cell {
        let one = [1.0];
        Cell {
            cca: cca.name().to_string(),
            mtu,
            energy_j: Summary::of(&one),
            power_w: Summary::of(&one),
            fct_s: Summary::of(&one),
            retx: Summary::of(&one),
            goodput_gbps: Summary::of(&one),
        }
    }

    fn stub_err(cca: CcaKind, mtu: u32, seed: u64, message: &str) -> CellError {
        CellError::Failed {
            cca,
            mtu,
            seed,
            message: message.to_string(),
        }
    }

    #[test]
    fn poisoned_cells_yield_a_partial_matrix_listing_every_failure() {
        // Two poisoned configurations that fail both attempts: the
        // campaign must finish, keep every healthy cell, and list both
        // casualties — not die on the first.
        let poisoned = [(CcaKind::Cubic, 1500), (CcaKind::Reno, 9000)];
        let m = run_matrix_with_runner(Scale::quick(), 4, |cca, mtu, _bytes, seeds| {
            if poisoned.contains(&(cca, mtu)) {
                Err(stub_err(cca, mtu, seeds[0], "poisoned"))
            } else {
                Ok(stub_cell(cca, mtu))
            }
        });
        assert!(!m.is_complete());
        assert_eq!(m.failed.len(), 2);
        assert_eq!(m.cells.len(), CcaKind::ALL.len() * MTUS.len() - 2);
        for (cca, mtu) in poisoned {
            assert!(m.cell(cca, mtu).is_none());
            let f = m
                .failed
                .iter()
                .find(|f| f.cca == cca.name() && f.mtu == mtu)
                .expect("failure recorded");
            assert!(f.error.contains("poisoned"), "{}", f.error);
            assert!(!f.retry_error.is_empty());
        }
        // Healthy neighbours survived.
        assert!(m.cell(CcaKind::Cubic, 9000).is_some());
    }

    #[test]
    fn flaky_cell_recovers_on_the_fresh_seed_retry() {
        // Fail (Bbr, 3000) only on the original seed schedule; the retry
        // runs with salted seeds and succeeds, so the matrix is complete.
        let original = Scale::quick().seeds();
        let m = run_matrix_with_runner(Scale::quick(), 2, |cca, mtu, _bytes, seeds| {
            if (cca, mtu) == (CcaKind::Bbr, 3000) && seeds == original.as_slice() {
                Err(stub_err(cca, mtu, seeds[0], "flaky"))
            } else {
                Ok(stub_cell(cca, mtu))
            }
        });
        assert!(m.is_complete(), "failed: {:?}", m.failed);
        assert_eq!(m.cells.len(), CcaKind::ALL.len() * MTUS.len());
        assert!(m.cell(CcaKind::Bbr, 3000).is_some());
    }

    #[test]
    fn mtu_1500_consumes_more_energy_than_9000() {
        // The §4.4 headline at miniature scale.
        let seeds = [3u64];
        let big = run_cell(CcaKind::Cubic, 9000, 200 * MB, &seeds).unwrap();
        let small = run_cell(CcaKind::Cubic, 1500, 200 * MB, &seeds).unwrap();
        assert!(
            small.energy_j.mean > 1.1 * big.energy_j.mean,
            "1500: {} J vs 9000: {} J",
            small.energy_j.mean,
            big.energy_j.mean
        );
    }
}
