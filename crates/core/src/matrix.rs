//! The shared CCA × MTU measurement matrix behind Figures 5-8.
//!
//! The paper's §4.3-4.5 figures all come from one campaign: transmit a
//! fixed volume with each of the ten CCAs at each of four MTUs, ten times
//! each, recording energy, power, completion time, and retransmissions.
//! [`run_matrix`] executes that campaign once; the figure modules render
//! different projections of it.

use crate::scale::Scale;
use analysis::stats::Summary;
use cca::CcaKind;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use workload::prelude::*;

/// The paper's MTU sweep (§4.4).
pub const MTUS: [u32; 4] = [1500, 3000, 6000, 9000];

/// One (CCA, MTU) cell, summarized over repetitions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Algorithm name.
    pub cca: String,
    /// MTU in bytes.
    pub mtu: u32,
    /// Sender energy over the experiment window (J).
    pub energy_j: Summary,
    /// Average sender power (W).
    pub power_w: Summary,
    /// Flow completion time (s) — the paper's "iperf time".
    pub fct_s: Summary,
    /// Retransmitted segments.
    pub retx: Summary,
    /// Mean goodput (Gb/s).
    pub goodput_gbps: Summary,
}

impl Cell {
    /// The algorithm of this cell.
    pub fn kind(&self) -> CcaKind {
        CcaKind::from_name(&self.cca).expect("cell names come from the registry")
    }
}

/// The full campaign result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Matrix {
    /// Bytes per transfer the campaign ran at.
    pub transfer_bytes: u64,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// The exact seed list every cell ran with. Stored so cached results
    /// are invalidated when the seed schedule changes, not only when the
    /// scale's size parameters do.
    pub seeds: Vec<u64>,
    /// All cells, ordered by `MTUS` within the paper's Figure-5 CCA order.
    pub cells: Vec<Cell>,
}

impl Matrix {
    /// The cell for a given algorithm and MTU.
    pub fn cell(&self, cca: CcaKind, mtu: u32) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.cca == cca.name() && c.mtu == mtu)
    }

    /// All cells at one MTU, in campaign order.
    pub fn at_mtu(&self, mtu: u32) -> Vec<&Cell> {
        self.cells.iter().filter(|c| c.mtu == mtu).collect()
    }
}

/// Run one (CCA, MTU) cell.
pub fn run_cell(cca: CcaKind, mtu: u32, bytes: u64, seeds: &[u64]) -> Cell {
    let mut energy = Vec::new();
    let mut power = Vec::new();
    let mut fct = Vec::new();
    let mut retx = Vec::new();
    let mut goodput = Vec::new();
    for &seed in seeds {
        let scenario = Scenario::new(mtu, vec![FlowSpec::bulk(cca, bytes)]).with_seed(seed);
        let out = workload::scenario::run(&scenario)
            .unwrap_or_else(|e| panic!("{} @ mtu {mtu} seed {seed}: {e}", cca.name()));
        let r = &out.reports[0];
        energy.push(out.sender_energy_j);
        power.push(out.average_sender_power_w());
        fct.push(r.fct.as_secs_f64());
        retx.push(r.retransmits as f64);
        goodput.push(r.mean_goodput.gbps());
    }
    Cell {
        cca: cca.name().to_string(),
        mtu,
        energy_j: Summary::of(&energy),
        power_w: Summary::of(&power),
        fct_s: Summary::of(&fct),
        retx: Summary::of(&retx),
        goodput_gbps: Summary::of(&goodput),
    }
}

/// Run the whole campaign at the given scale. Cells are independent
/// simulations, so they run across all available cores.
pub fn run_matrix(scale: Scale) -> Matrix {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_matrix_with_threads(scale, threads)
}

/// [`run_matrix`] with an explicit worker count (determinism tests pin
/// it; the campaign result must not depend on the thread schedule).
///
/// Workers pull the next unclaimed cell off a shared atomic counter
/// (work stealing) rather than taking a fixed stride: cell costs vary by
/// ~6× across MTUs (a 1500-byte-MTU transfer pushes six times the
/// packets of a 9000-byte one), so a static split leaves workers idle
/// behind whoever drew the expensive cells.
pub fn run_matrix_with_threads(scale: Scale, threads: usize) -> Matrix {
    let seeds = scale.seeds();
    let jobs: Vec<(CcaKind, u32)> = CcaKind::ALL
        .iter()
        .flat_map(|&cca| MTUS.iter().map(move |&mtu| (cca, mtu)))
        .collect();
    let threads = threads.max(1).min(jobs.len());
    let next = AtomicUsize::new(0);

    let mut indexed: Vec<(usize, Cell)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let jobs = &jobs;
                let seeds = &seeds;
                let next = &next;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let (cca, mtu) = jobs[i];
                        // Name the cell on any panic (including asserts
                        // deep inside the simulator) so a failed campaign
                        // says which configuration died, not just that a
                        // worker did.
                        let cell = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || run_cell(cca, mtu, scale.transfer_bytes, seeds),
                        ))
                        .unwrap_or_else(|payload| {
                            panic!(
                                "campaign cell {} @ mtu {mtu} (seeds {seeds:?}) failed: {}",
                                cca.name(),
                                panic_message(payload.as_ref())
                            )
                        });
                        done.push((i, cell));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);

    Matrix {
        transfer_bytes: scale.transfer_bytes,
        repetitions: scale.repetitions,
        seeds,
        cells: indexed.into_iter().map(|(_, c)| c).collect(),
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    #[test]
    fn cell_summarizes_repetitions() {
        let cell = run_cell(CcaKind::Cubic, 9000, 100 * MB, &[1, 2]);
        assert_eq!(cell.energy_j.n, 2);
        assert!(cell.energy_j.mean > 0.0);
        assert!(cell.power_w.mean > 21.49, "active sender above idle");
        assert!(cell.goodput_gbps.mean > 8.0);
        assert_eq!(cell.kind(), CcaKind::Cubic);
    }

    #[test]
    fn matrix_lookup() {
        let m = Matrix {
            transfer_bytes: 1,
            repetitions: 1,
            seeds: vec![1],
            cells: vec![
                run_cell(CcaKind::Reno, 9000, 50 * MB, &[1]),
                run_cell(CcaKind::Reno, 1500, 50 * MB, &[1]),
            ],
        };
        assert!(m.cell(CcaKind::Reno, 9000).is_some());
        assert!(m.cell(CcaKind::Cubic, 9000).is_none());
        assert_eq!(m.at_mtu(1500).len(), 1);
    }

    #[test]
    fn mtu_1500_consumes_more_energy_than_9000() {
        // The §4.4 headline at miniature scale.
        let seeds = [3u64];
        let big = run_cell(CcaKind::Cubic, 9000, 200 * MB, &seeds);
        let small = run_cell(CcaKind::Cubic, 1500, 200 * MB, &seeds);
        assert!(
            small.energy_j.mean > 1.1 * big.energy_j.mean,
            "1500: {} J vs 9000: {} J",
            small.energy_j.mean,
            big.energy_j.mean
        );
    }
}
