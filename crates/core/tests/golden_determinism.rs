//! Golden determinism regression tests.
//!
//! The engine promises bit-for-bit reproducibility: same scenario, same
//! seed, same results — regardless of scheduler internals (wheel vs
//! heap placement) or how many campaign threads raced over the matrix.
//! These tests pin an exact fingerprint of a mid-size two-flow run so
//! any change that perturbs event order, RNG draws, or float summation
//! order fails loudly instead of silently shifting figures.
//!
//! If a deliberate behaviour change moves these numbers, re-capture them
//! with `cargo test -p greenenvy --test golden_determinism -- --nocapture`
//! (the failure message prints the observed fingerprint) and say so in
//! the commit message.

use cca::CcaKind;
use greenenvy::matrix::run_matrix_with_threads;
use greenenvy::scale::Scale;
use netsim::fault::FaultSpec;
use netsim::time::{SimDuration, SimTime};
use netsim::units::MB;
use workload::prelude::*;

/// Exact fingerprint of the mid-size two-flow scenario below, captured
/// on the hybrid-scheduler engine. `sender_energy_j` is compared with
/// `==`: the energy pipeline is pure IEEE-754 arithmetic in a
/// deterministic order, so the float is exactly reproducible.
const GOLDEN_EVENTS_PROCESSED: u64 = 204_899;
const GOLDEN_SIM_END_NS: u64 = 200_164_047;
const GOLDEN_SENDER_ENERGY_J: f64 = 4.594573974609375;
const GOLDEN_TOTAL_RETX: u64 = 195;

fn two_flow_scenario() -> Scenario {
    Scenario::new(
        3000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, 40 * MB),
            FlowSpec::bulk(CcaKind::Reno, 40 * MB),
        ],
    )
    .with_seed(7)
}

#[test]
fn two_flow_fingerprint_is_stable() {
    let out = workload::scenario::run(&two_flow_scenario()).expect("scenario runs");
    let retx: u64 = out.reports.iter().map(|r| r.retransmits).sum();
    let observed = (
        out.engine.events_processed,
        out.sim_end.as_nanos(),
        out.sender_energy_j,
        retx,
    );
    println!("observed fingerprint: {observed:?}");
    assert_eq!(
        observed,
        (
            GOLDEN_EVENTS_PROCESSED,
            GOLDEN_SIM_END_NS,
            GOLDEN_SENDER_ENERGY_J,
            GOLDEN_TOTAL_RETX
        ),
        "golden fingerprint moved — event order, RNG, or float summation changed"
    );
}

/// The fault layer draws from its own RNG stream, so a faulted run must
/// be exactly as reproducible as a clean one: same `FaultSpec`, same
/// seed, identical fingerprint — including the injected-drop tally. No
/// golden constants here; the invariant is run-to-run equality (the
/// chaos spec itself is the changing part of the chaos suite, the
/// clean-run fingerprint above is the frozen part).
#[test]
fn faulted_two_flow_fingerprint_replays_identically() {
    let spec = FaultSpec::random_loss(1e-3)
        .with_reordering(5e-4, SimDuration::from_micros(50))
        .with_flap(SimTime::from_millis(40), SimTime::from_millis(60));
    let scenario = two_flow_scenario().with_fault(spec);
    let fingerprint = |out: &ScenarioOutcome| {
        (
            out.engine.events_processed,
            out.sim_end.as_nanos(),
            out.sender_energy_j,
            out.reports.iter().map(|r| r.retransmits).sum::<u64>(),
            out.injected_drops,
        )
    };
    let a = workload::scenario::run(&scenario).expect("faulted scenario runs");
    let b = workload::scenario::run(&scenario).expect("faulted scenario runs");
    assert!(a.injected_drops > 0, "the fault spec must actually bite");
    assert!(
        a.reports.iter().all(|r| r.outcome.is_completed()),
        "0.1% loss plus a 20 ms flap is survivable"
    );
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "faulted runs must replay bit-identically"
    );
}

/// The work-stealing campaign runner hands cells to whichever thread
/// asks next, so the *assignment* of cells to threads is racy — but the
/// cells themselves are pure functions of `(cca, mtu, seeds)`. The
/// serialized matrix must therefore be byte-identical at any thread
/// count. (`{:?}`/serde_json print f64 shortest-roundtrip, so equal
/// strings ⇔ bit-equal floats.)
#[test]
fn matrix_is_thread_count_invariant() {
    let scale = Scale {
        transfer_bytes: 10 * MB,
        two_flow_bytes: 10 * MB,
        repetitions: 1,
        name: "golden-tiny",
    };
    let reference =
        serde_json::to_string(&run_matrix_with_threads(scale, 1)).expect("matrix serializes");
    for threads in [2, 8] {
        let got = serde_json::to_string(&run_matrix_with_threads(scale, threads))
            .expect("matrix serializes");
        assert_eq!(
            got, reference,
            "matrix output differs between 1 and {threads} campaign threads"
        );
    }
}
