//! Property test: sharded-journal resume survives ANY per-shard
//! corruption combination with a byte-identical merged matrix.
//!
//! The single-journal integration tests pin three corruption modes
//! (torn final line, flipped bit, stale fingerprint) one at a time.
//! Sharding multiplies the failure surface — each shard can be torn,
//! rotted, stale, truncated, or intact *independently* — so here the
//! corruption assignment is randomized across shards and the invariant
//! is checked wholesale: whatever survives validation is reused,
//! everything else re-runs, and the merged matrix is byte-identical to
//! an uninterrupted campaign. The expected reuse count is not guessed:
//! it is recomputed by loading the corrupted shards through the same
//! validation the campaign uses.

use analysis::stats::Summary;
use cca::CcaKind;
use greenenvy::campaign::{journal, run_campaign_with_runner, CampaignOptions, Fingerprint};
use greenenvy::matrix::{Cell, Matrix};
use greenenvy::Scale;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const TOTAL: usize = 40; // 10 CCAs × 4 MTUs
const SHARDS: usize = 3;

/// A deterministic fake measurement: every statistic is a pure function
/// of (cca, mtu, seeds), like the real simulator but instant.
fn fake_cell(cca: CcaKind, mtu: u32, seeds: &[u64]) -> Cell {
    let xs: Vec<f64> = seeds
        .iter()
        .map(|&s| (s as f64).sqrt() + mtu as f64 / 1500.0 + cca.name().len() as f64 * 0.37)
        .collect();
    Cell {
        cca: cca.name().to_string(),
        mtu,
        energy_j: Summary::of(&xs),
        power_w: Summary::of(&xs),
        fct_s: Summary::of(&xs),
        retx: Summary::of(&xs),
        goodput_gbps: Summary::of(&xs),
    }
}

fn scratch() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "greenenvy-shard-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn json(m: &Matrix) -> String {
    serde_json::to_string_pretty(m).unwrap()
}

/// One shard's fate. The numeric payloads pick *which* record suffers,
/// modulo however many the shard actually holds.
#[derive(Clone, Debug)]
enum Corruption {
    /// Leave the shard alone.
    Intact,
    /// Chop bytes off the end — the classic crash-mid-append signature.
    TornFinal,
    /// Flip a digit inside one record's payload (valid JSON, bad hash).
    BitFlip(usize),
    /// Garble the header: the whole shard reads as foreign.
    StaleHeader,
    /// Keep only a prefix of the records (e.g. an interrupted copy).
    Truncate(usize),
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        Just(Corruption::Intact),
        Just(Corruption::TornFinal),
        (0usize..64).prop_map(Corruption::BitFlip),
        Just(Corruption::StaleHeader),
        (0usize..64).prop_map(Corruption::Truncate),
    ]
}

fn apply(path: &Path, corruption: &Corruption) {
    let body = std::fs::read_to_string(path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    let records = lines.len().saturating_sub(1);
    let mutated = match corruption {
        Corruption::Intact => return,
        Corruption::TornFinal => {
            let cut = body.len().saturating_sub(15);
            body[..cut].to_string()
        }
        Corruption::BitFlip(which) => {
            if records == 0 {
                return;
            }
            let victim = 1 + which % records;
            let mut out = Vec::new();
            for (i, line) in lines.iter().enumerate() {
                if i == victim {
                    // Flip the first digit we find; the content hash
                    // must catch it even though the line stays JSON.
                    let flipped: String = {
                        let mut done = false;
                        line.chars()
                            .map(|c| {
                                if !done && c.is_ascii_digit() {
                                    done = true;
                                    if c == '9' {
                                        '0'
                                    } else {
                                        char::from(c as u8 + 1)
                                    }
                                } else {
                                    c
                                }
                            })
                            .collect()
                    };
                    out.push(flipped);
                } else {
                    out.push((*line).to_string());
                }
            }
            format!("{}\n", out.join("\n"))
        }
        Corruption::StaleHeader => body.replacen("greenenvy-campaign", "foreign-journal", 1),
        Corruption::Truncate(keep) => {
            if records == 0 {
                return;
            }
            let keep = keep % (records + 1);
            format!("{}\n", lines[..=keep].join("\n"))
        }
    };
    std::fs::write(path, mutated).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Complete a sharded campaign, corrupt each shard independently,
    /// resume: exactly the validated survivors are reused and the
    /// merged matrix is byte-identical to the uninterrupted one.
    #[test]
    fn any_shard_corruption_combination_resumes_byte_identically(
        corruptions in proptest::collection::vec(arb_corruption(), SHARDS),
    ) {
        let dir = scratch();
        let run = |resume: bool, threads: usize| {
            run_campaign_with_runner(
                Scale::quick(),
                CampaignOptions {
                    threads,
                    journal_dir: Some(dir.clone()),
                    resume,
                    ..Default::default()
                },
                |cca, mtu, _b, seeds| Ok(fake_cell(cca, mtu, seeds)),
            )
            .unwrap()
        };

        // Life 1: run to completion across SHARDS workers.
        let golden = run(false, SHARDS);
        prop_assert_eq!(golden.matrix.cells.len(), TOTAL);

        // Disaster strikes each shard independently.
        for (i, c) in corruptions.iter().enumerate() {
            apply(&journal::shard_path(&dir, i), c);
        }

        // What the validation layer can still vouch for — computed via
        // the same loader the campaign will use, not guessed from the
        // corruption list.
        let fp = Fingerprint::of(&Scale::quick());
        let survivors = journal::load_sharded(&dir, &fp).unwrap();
        let intact_cells = survivors
            .entries
            .iter()
            .filter(|e| matches!(e, journal::Entry::Cell(_)))
            .count();

        // Life 2: resume on a different pool width.
        let resumed = run(true, 2);
        prop_assert_eq!(resumed.reused, intact_cells);
        prop_assert_eq!(resumed.executed, TOTAL - intact_cells);
        prop_assert_eq!(json(&resumed.matrix), json(&golden.matrix));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
