//! Golden observability regression tests.
//!
//! The observability subsystem promises two things at once:
//!
//! 1. **Zero perturbation** — attaching a recorder must not move the
//!    golden determinism fingerprint (same constants as
//!    `golden_determinism.rs`; re-capture both files together if a
//!    deliberate engine change moves them).
//! 2. **Deterministic output** — with the recorder on, the exported
//!    Perfetto JSON and Prometheus snapshot are byte-identical across
//!    runs, so traces can be diffed and cached like any other artifact.
//!
//! Plus the failure path: an aborted flow must leave its flight-ring
//! dump in the cell artifact directory.

use cca::CcaKind;
use greenenvy::campaign::artifacts::persist_cell_obs;
use netsim::fault::FaultSpec;
use netsim::time::SimDuration;
use netsim::units::MB;
use workload::prelude::*;

/// Same fingerprint as `golden_determinism.rs` — pinned here too so a
/// recorder-induced drift fails this file by name.
const GOLDEN_EVENTS_PROCESSED: u64 = 204_899;
const GOLDEN_SIM_END_NS: u64 = 200_164_047;
const GOLDEN_SENDER_ENERGY_J: f64 = 4.594573974609375;
const GOLDEN_TOTAL_RETX: u64 = 195;

fn two_flow_scenario() -> Scenario {
    Scenario::new(
        3000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, 40 * MB),
            FlowSpec::bulk(CcaKind::Reno, 40 * MB),
        ],
    )
    .with_seed(7)
}

fn fingerprint(out: &ScenarioOutcome) -> (u64, u64, f64, u64) {
    (
        out.engine.events_processed,
        out.sim_end.as_nanos(),
        out.sender_energy_j,
        out.reports.iter().map(|r| r.retransmits).sum(),
    )
}

#[test]
fn recorder_does_not_move_the_golden_fingerprint() {
    let golden = (
        GOLDEN_EVENTS_PROCESSED,
        GOLDEN_SIM_END_NS,
        GOLDEN_SENDER_ENERGY_J,
        GOLDEN_TOTAL_RETX,
    );
    let plain = workload::scenario::run(&two_flow_scenario()).expect("plain run");
    assert_eq!(
        fingerprint(&plain),
        golden,
        "baseline fingerprint moved — fix golden_determinism.rs first"
    );

    let observed = workload::scenario::run(
        &two_flow_scenario()
            .with_observability()
            .with_trace(SimDuration::from_millis(10)),
    )
    .expect("observed run");
    assert_eq!(
        fingerprint(&observed),
        golden,
        "attaching the recorder perturbed the simulation"
    );

    // The recorder saw the same run the engine reports: every
    // retransmitted segment landed in the metrics registry.
    let report = observed.obs.expect("observed run yields a report");
    assert_eq!(
        report.metrics.counter_total("tcp_retx_total"),
        GOLDEN_TOTAL_RETX
    );
    assert_eq!(report.metrics.counter_total("flows_completed_total"), 2);
}

#[test]
fn observed_exports_are_byte_identical_across_runs() {
    let scenario = two_flow_scenario()
        .with_observability()
        .with_trace(SimDuration::from_millis(10));
    let a = workload::scenario::run(&scenario)
        .expect("first run")
        .obs
        .expect("report");
    let b = workload::scenario::run(&scenario)
        .expect("second run")
        .obs
        .expect("report");
    assert_eq!(
        a.perfetto_json(),
        b.perfetto_json(),
        "Perfetto export must be byte-reproducible"
    );
    assert_eq!(
        a.prometheus_text(),
        b.prometheus_text(),
        "Prometheus export must be byte-reproducible"
    );
    assert!(a.perfetto_json().contains("\"traceEvents\""));
    assert!(a.perfetto_json().contains("throughput_gbps"));
    assert!(a.prometheus_text().contains("tcp_rtt_ns"));
}

#[test]
fn aborted_cell_artifact_contains_the_flight_ring() {
    use transport::stats::FlowOutcome;
    // 100% loss starves the flow until the RTO retry cap aborts it.
    let out = workload::scenario::run(
        &Scenario::new(9000, vec![FlowSpec::bulk(CcaKind::Cubic, 10 * MB)])
            .with_fault(FaultSpec::random_loss(1.0))
            .with_max_rto_retries(3)
            .with_observability(),
    )
    .expect("aborted flows still produce an outcome");
    assert!(matches!(out.reports[0].outcome, FlowOutcome::Aborted(_)));

    let dir = std::env::temp_dir().join(format!("greenenvy-golden-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = out.obs.expect("report");
    let aborted = out.reports.iter().any(|r| !r.outcome.is_completed());
    persist_cell_obs(&dir, "cubic_mtu9000_seed0", &report, aborted).expect("artifacts persist");

    let flight = std::fs::read_to_string(dir.join("cubic_mtu9000_seed0.flight.txt"))
        .expect("abort dumps the flight ring");
    assert!(flight.contains("ABORTED"), "{flight}");
    assert!(flight.contains("rto"), "the RTO spiral is in the ring");
    assert!(dir.join("cubic_mtu9000_seed0.trace.json").exists());
    assert!(dir.join("cubic_mtu9000_seed0.prom").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
