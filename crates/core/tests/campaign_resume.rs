//! Durability integration tests: kill/resume bit-identity and journal
//! corruption recovery.
//!
//! These drive the public campaign API end to end with a deterministic
//! stub runner (cells are pure functions of their inputs, so any
//! re-execution produces identical bits — exactly the property the real
//! simulator has). What's under test is the durability layer: which
//! cells re-run, and whether a resumed campaign's matrix is
//! byte-identical to an uninterrupted one.

use analysis::stats::Summary;
use cca::CcaKind;
use greenenvy::campaign::{
    journal, run_campaign_with_runner, CampaignOptions, CancelToken, Fingerprint,
};
use greenenvy::matrix::{Cell, CellError, Matrix, MTUS};
use greenenvy::Scale;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const TOTAL: usize = 40; // 10 CCAs × 4 MTUS

/// A deterministic fake measurement: every statistic is a pure function
/// of (cca, mtu, seeds), like the real simulator but instant.
fn fake_cell(cca: CcaKind, mtu: u32, seeds: &[u64]) -> Cell {
    let xs: Vec<f64> = seeds
        .iter()
        .map(|&s| (s as f64).sqrt() + mtu as f64 / 1500.0 + cca.name().len() as f64 * 0.37)
        .collect();
    Cell {
        cca: cca.name().to_string(),
        mtu,
        energy_j: Summary::of(&xs),
        power_w: Summary::of(&xs),
        fct_s: Summary::of(&xs),
        retx: Summary::of(&xs),
        goodput_gbps: Summary::of(&xs),
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("greenenvy-resume-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn json(m: &Matrix) -> String {
    serde_json::to_string_pretty(m).unwrap()
}

/// The golden reference: the campaign run start to finish, no journal.
fn uninterrupted() -> Matrix {
    run_campaign_with_runner(
        Scale::quick(),
        CampaignOptions {
            threads: 3,
            ..Default::default()
        },
        |cca, mtu, _b, seeds| Ok(fake_cell(cca, mtu, seeds)),
    )
    .unwrap()
    .matrix
}

#[test]
fn killed_campaign_resumes_to_a_bit_identical_matrix() {
    let dir = scratch("kill");
    let journal_path = dir.join("campaign.jsonl");

    // Life 1: a SIGTERM-style cancellation lands after ~13 cells. (The
    // token is tripped from inside the runner, which is exactly what the
    // signal handler's flag amounts to: cancellation observed between
    // cells.)
    let cancel = CancelToken::new();
    let calls = AtomicUsize::new(0);
    let first = run_campaign_with_runner(
        Scale::quick(),
        CampaignOptions {
            threads: 2,
            journal: Some(journal_path.clone()),
            cancel: cancel.clone(),
            ..Default::default()
        },
        |cca, mtu, _b, seeds| {
            if calls.fetch_add(1, Ordering::SeqCst) + 1 >= 13 {
                cancel.cancel();
            }
            Ok(fake_cell(cca, mtu, seeds))
        },
    )
    .unwrap();
    assert!(first.cancelled);
    assert!(
        first.executed < TOTAL,
        "the kill must interrupt the campaign"
    );
    assert!(first.skipped > 0);
    // The partial matrix is honest: exactly the executed cells.
    assert_eq!(first.matrix.cells.len(), first.executed);

    // Life 2: --resume. Only the un-journaled cells execute, and the
    // merged matrix is byte-identical to the uninterrupted golden run.
    let resumed_calls = AtomicUsize::new(0);
    let second = run_campaign_with_runner(
        Scale::quick(),
        CampaignOptions {
            threads: 4,
            journal: Some(journal_path.clone()),
            resume: true,
            ..Default::default()
        },
        |cca, mtu, _b, seeds| {
            resumed_calls.fetch_add(1, Ordering::SeqCst);
            Ok(fake_cell(cca, mtu, seeds))
        },
    )
    .unwrap();
    assert_eq!(
        second.reused, first.executed,
        "every journaled cell is reused"
    );
    assert_eq!(second.executed, TOTAL - first.executed);
    assert_eq!(resumed_calls.load(Ordering::SeqCst), second.executed);
    assert_eq!(
        json(&second.matrix),
        json(&uninterrupted()),
        "bit-identical merge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Run the full campaign once, journaled, and return the journal path.
fn journaled_run(dir: &std::path::Path) -> PathBuf {
    let journal_path = dir.join("campaign.jsonl");
    let report = run_campaign_with_runner(
        Scale::quick(),
        CampaignOptions {
            threads: 2,
            journal: Some(journal_path.clone()),
            ..Default::default()
        },
        |cca, mtu, _b, seeds| Ok(fake_cell(cca, mtu, seeds)),
    )
    .unwrap();
    assert_eq!(report.executed, TOTAL);
    journal_path
}

/// Resume against the (possibly damaged) journal, counting how many
/// cells actually re-execute, and assert the final matrix still matches
/// the golden run bit for bit.
fn resume_and_count(journal_path: &Path) -> usize {
    let calls = AtomicUsize::new(0);
    let report = run_campaign_with_runner(
        Scale::quick(),
        CampaignOptions {
            threads: 2,
            journal: Some(journal_path.to_path_buf()),
            resume: true,
            ..Default::default()
        },
        |cca, mtu, _b, seeds| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(fake_cell(cca, mtu, seeds))
        },
    )
    .unwrap();
    assert_eq!(json(&report.matrix), json(&uninterrupted()));
    assert_eq!(report.executed, calls.load(Ordering::SeqCst));
    report.executed
}

#[test]
fn truncated_final_line_re_runs_exactly_one_cell() {
    let dir = scratch("torn");
    let journal_path = journaled_run(&dir);
    // Tear the last record in half, as a crash mid-append would.
    let body = std::fs::read_to_string(&journal_path).unwrap();
    std::fs::write(&journal_path, &body[..body.len() - 40]).unwrap();
    assert_eq!(resume_and_count(&journal_path), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_record_hash_re_runs_exactly_that_cell() {
    let dir = scratch("hash");
    let journal_path = journaled_run(&dir);
    // Flip one digit inside a mid-journal record's payload. The line
    // stays valid JSON; only the content hash can catch it.
    let body = std::fs::read_to_string(&journal_path).unwrap();
    let mut lines: Vec<String> = body.lines().map(String::from).collect();
    assert!(lines.len() > 20);
    let target = &lines[20];
    let corrupted = if target.contains("1500") {
        target.replacen("1500", "1501", 1)
    } else {
        target.replacen("mtu", "mtU", 1)
    };
    assert_ne!(&corrupted, target);
    lines[20] = corrupted;
    std::fs::write(&journal_path, lines.join("\n") + "\n").unwrap();
    assert_eq!(resume_and_count(&journal_path), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_fingerprint_re_runs_everything() {
    let dir = scratch("fingerprint");
    let journal_path = journaled_run(&dir);
    // A journal from a different campaign configuration: rewrite the
    // header with another scale's fingerprint. Every record now belongs
    // to a run whose results are not comparable.
    let other = Fingerprint::of(&Scale::standard());
    let body = std::fs::read_to_string(&journal_path).unwrap();
    let mut lines: Vec<&str> = body.lines().collect();
    let forged = format!(
        "{{\"journal\":\"greenenvy-campaign\",\"schema\":1,\"fingerprint\":\"{}\"}}",
        other.hex()
    );
    lines[0] = &forged;
    std::fs::write(&journal_path, lines.join("\n") + "\n").unwrap();
    // Sanity: the loader now reports the whole journal stale.
    let loaded = journal::load(&journal_path, &Fingerprint::of(&Scale::quick())).unwrap();
    assert!(loaded.stale);
    assert_eq!(resume_and_count(&journal_path), TOTAL);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_and_invariant_failures_carry_typed_errors_through_the_matrix() {
    // A cell runner that reports each durability-layer error type; the
    // campaign must record them (post-retry) in the partial matrix with
    // the typed messages intact.
    let report = run_campaign_with_runner(
        Scale::quick(),
        CampaignOptions {
            threads: 2,
            ..Default::default()
        },
        |cca, mtu, _b, seeds| match (cca, mtu) {
            (CcaKind::Cubic, 1500) => Err(CellError::DeadlineExceeded {
                cca,
                mtu,
                seed: seeds[0],
                budget: std::time::Duration::from_secs(5),
            }),
            (CcaKind::Reno, 9000) => Err(CellError::InvariantViolation {
                cca,
                mtu,
                seed: seeds[0],
                detail: "invariant violated: frame conservation at quiescence".into(),
            }),
            _ => Ok(fake_cell(cca, mtu, seeds)),
        },
    )
    .unwrap();
    assert_eq!(report.matrix.failed.len(), 2);
    assert_eq!(report.matrix.cells.len(), TOTAL - 2);
    let deadline = report
        .matrix
        .failed
        .iter()
        .find(|f| f.cca == "cubic" && f.mtu == 1500)
        .unwrap();
    assert!(deadline.error.contains("deadline"), "{}", deadline.error);
    let invariant = report
        .matrix
        .failed
        .iter()
        .find(|f| f.cca == "reno" && f.mtu == 9000)
        .unwrap();
    assert!(
        invariant.error.contains("conservation"),
        "{}",
        invariant.error
    );
}

#[test]
fn every_mtu_appears_in_the_golden_matrix_order() {
    // The resume merge sorts by canonical job index; make sure that
    // order is the documented one (MTUS within CCA order) so downstream
    // figure projections keep their layout.
    let m = uninterrupted();
    assert_eq!(m.cells.len(), TOTAL);
    for (i, cell) in m.cells.iter().enumerate() {
        let cca = CcaKind::ALL[i / MTUS.len()];
        let mtu = MTUS[i % MTUS.len()];
        assert_eq!(cell.cca, cca.name());
        assert_eq!(cell.mtu, mtu);
    }
}
