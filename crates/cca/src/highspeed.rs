//! HighSpeed TCP (RFC 3649).
//!
//! Reno whose additive-increase `a(w)` and multiplicative-decrease `b(w)`
//! depend on the current window: large windows grow faster and back off
//! less, restoring utilization on high bandwidth-delay-product paths.
//! Below `W_LOW` segments it is exactly Reno. We use the RFC's analytic
//! response function rather than the appendix lookup table:
//!
//! * `b(w)` interpolates log-linearly from 0.5 at `W_LOW` to `B_HIGH` at
//!   `W_HIGH`;
//! * `a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))` with
//!   `p(w) = 0.078 / w^1.2` chosen so the response function passes through
//!   the RFC's reference points.

use crate::common::WindowCore;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// Below this window (segments), behave as Reno.
pub const W_LOW: f64 = 38.0;
/// Reference high window (segments).
pub const W_HIGH: f64 = 83_000.0;
/// Decrease factor parameter at `W_HIGH`.
pub const B_HIGH: f64 = 0.1;

/// HighSpeed TCP's `b(w)`: the fraction *removed* on loss.
pub fn b_of_w(w_segs: f64) -> f64 {
    if w_segs <= W_LOW {
        return 0.5;
    }
    let t = (w_segs.ln() - W_LOW.ln()) / (W_HIGH.ln() - W_LOW.ln());
    (0.5 + (B_HIGH - 0.5) * t).clamp(B_HIGH, 0.5)
}

/// HighSpeed TCP's `a(w)`: segments added per congestion-free RTT.
pub fn a_of_w(w_segs: f64) -> f64 {
    if w_segs <= W_LOW {
        return 1.0;
    }
    let b = b_of_w(w_segs);
    let p = 0.078 / w_segs.powf(1.2);
    (w_segs * w_segs * p * 2.0 * b / (2.0 - b)).max(1.0)
}

/// HighSpeed TCP.
#[derive(Debug)]
pub struct HighSpeed {
    win: WindowCore,
}

impl HighSpeed {
    /// A HighSpeed controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        HighSpeed {
            win: WindowCore::new(mss, 10),
        }
    }
}

impl CongestionControl for HighSpeed {
    fn name(&self) -> &'static str {
        "highspeed"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.newly_acked_bytes == 0 || ev.in_recovery || !ev.cwnd_limited {
            return;
        }
        if self.win.in_slow_start() {
            self.win.slow_start_increase(ev.newly_acked_bytes);
            return;
        }
        // cwnd += a(w) * mss * acked / cwnd  (a(w) segments per RTT).
        let a = a_of_w(self.win.cwnd_segs());
        let mss = self.win.mss() as f64;
        let inc = a * mss * ev.newly_acked_bytes as f64 / self.win.cwnd() as f64;
        self.win.set_cwnd(self.win.cwnd() + inc.round() as u64);
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        let b = b_of_w(self.win.cwnd_segs());
        self.win.multiplicative_decrease(1.0 - b);
    }

    fn on_rto(&mut self, _now: netsim::time::SimTime, _mss: u32) {
        self.win.rto_collapse();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// A log + two table interpolations per ack; calibrated to the
    /// measured Fig. 6 ordering.
    fn compute_cost_factor(&self) -> f64 {
        0.65
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, congestion};

    #[test]
    fn response_function_reference_points() {
        // RFC 3649: at w = 38, a = 1 and b = 0.5 (Reno-compatible).
        assert!((a_of_w(38.0) - 1.0).abs() < 0.1);
        assert_eq!(b_of_w(38.0), 0.5);
        // At w = 83000, b = 0.1 and a ~ 70-73.
        assert!((b_of_w(83_000.0) - 0.1).abs() < 1e-9);
        let a = a_of_w(83_000.0);
        assert!((65.0..80.0).contains(&a), "a(83000)={a}");
    }

    #[test]
    fn a_is_monotone_and_b_decreasing() {
        let mut prev_a = 0.0;
        let mut prev_b = 1.0;
        for exp in 1..=10 {
            let w = 38.0 * 2f64.powi(exp);
            let a = a_of_w(w);
            let b = b_of_w(w);
            assert!(a >= prev_a, "a must not decrease");
            assert!(b <= prev_b, "b must not increase");
            prev_a = a;
            prev_b = b;
        }
    }

    #[test]
    fn small_windows_are_reno() {
        let mut cc = HighSpeed::new(1000);
        cc.on_congestion_event(&congestion(20_000)); // cwnd = 10k, CA
        let w0 = cc.cwnd();
        for _ in 0..(w0 / 1000) {
            cc.on_ack(&ack(1000, 0));
        }
        let growth = cc.cwnd() - w0;
        assert!((900..=1100).contains(&growth), "growth={growth}");
    }

    #[test]
    fn large_windows_grow_aggressively_and_back_off_gently() {
        let mut cc = HighSpeed::new(1000);
        // Inflate to ~1000 segments, then leave slow start.
        cc.on_ack(&ack(990_000, 0));
        cc.on_congestion_event(&congestion(cc.cwnd()));
        let w0 = cc.cwnd();
        let b = b_of_w(w0 as f64 / 1000.0);
        assert!(b < 0.5, "large window must back off less: b={b}");
        // One window of acks: growth of a(w) > 1 segments.
        let mut acked = 0;
        while acked < w0 {
            cc.on_ack(&ack(1000, 0));
            acked += 1000;
        }
        let growth_segs = (cc.cwnd() - w0) as f64 / 1000.0;
        let expected = a_of_w(w0 as f64 / 1000.0);
        assert!(
            growth_segs > 1.5 && (growth_segs - expected).abs() / expected < 0.3,
            "growth={growth_segs} expected~{expected}"
        );
    }

    #[test]
    fn rto_collapse() {
        let mut cc = HighSpeed::new(1000);
        cc.on_ack(&ack(100_000, 0));
        cc.on_rto(netsim::time::SimTime::ZERO, 1000);
        assert_eq!(cc.cwnd(), 1000);
    }

    #[test]
    fn identity() {
        assert_eq!(HighSpeed::new(1000).name(), "highspeed");
    }
}
