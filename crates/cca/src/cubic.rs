//! CUBIC (Ha, Rhee, Xu — RFC 8312), the Linux default since 2.6.19 and
//! the algorithm the paper uses for its headline experiments.
//!
//! After a loss at window `W_max`, the window follows the cubic
//! `W(t) = C (t - K)^3 + W_max` with `K = cbrt(W_max * beta / C)`: a fast
//! ramp, a plateau at the previous high-water mark, then probing beyond.
//! A Reno-like "TCP-friendly" estimate floors the window so CUBIC never
//! underperforms Reno at small BDPs. Fast convergence releases bandwidth
//! to new flows by remembering a slightly smaller `W_max` when losses
//! come before the previous plateau is reached.

use crate::common::WindowCore;
use netsim::time::{SimDuration, SimTime};
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// CUBIC's scaling constant (segments/sec^3), per RFC 8312.
pub const C: f64 = 0.4;
/// Multiplicative decrease factor (RFC 8312 uses 0.7).
pub const BETA: f64 = 0.7;

/// CUBIC.
#[derive(Debug)]
pub struct Cubic {
    win: WindowCore,
    /// Window at the last congestion event, in segments.
    w_max: f64,
    /// Epoch start (time of the last congestion event).
    epoch_start: Option<SimTime>,
    /// Plateau offset `K` in seconds.
    k: f64,
    /// Reno-equivalent window estimate for the TCP-friendly region.
    w_est: f64,
    /// Smoothed RTT at epoch start, for the friendliness estimate.
    last_srtt: SimDuration,
}

impl Cubic {
    /// A CUBIC controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Cubic {
            win: WindowCore::new(mss, 10),
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            last_srtt: SimDuration::from_millis(1),
        }
    }

    /// The cubic window (in segments) at `t` seconds into the epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.newly_acked_bytes == 0 || ev.in_recovery || !ev.cwnd_limited {
            return;
        }
        self.last_srtt = ev.srtt;
        if self.win.in_slow_start() {
            self.win.slow_start_increase(ev.newly_acked_bytes);
            return;
        }
        let mss = self.win.mss() as f64;
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // First CA ack without a prior loss: start an epoch at the
            // current window (w_max = current).
            self.w_max = self.win.cwnd() as f64 / mss;
            self.k = 0.0;
            self.w_est = self.w_max;
            ev.now
        });

        let t = ev.now.saturating_since(epoch_start).as_secs_f64();
        let rtt = ev.srtt.as_secs_f64().max(1e-6);

        // Target: the cubic curve evaluated one RTT ahead (RFC 8312 §4.1).
        let target = self.w_cubic(t + rtt);

        // TCP-friendly region (RFC 8312 §4.2): Reno's AIMD estimate.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * ev.newly_acked_bytes as f64
            / (self.win.cwnd() as f64);

        let cwnd_segs = self.win.cwnd() as f64 / mss;
        let next = if target > cwnd_segs {
            // Standard cubic growth: close (target - cwnd)/cwnd per ack —
            // approximated by stepping toward the target proportionally to
            // the acked bytes.
            cwnd_segs
                + (target - cwnd_segs) * (ev.newly_acked_bytes as f64 / self.win.cwnd() as f64)
        } else {
            // In the plateau: probe very gently.
            cwnd_segs + 0.01 * (ev.newly_acked_bytes as f64 / mss) / cwnd_segs
        };
        let next = next.max(self.w_est);
        self.win.set_cwnd((next * mss) as u64);
    }

    fn on_congestion_event(&mut self, ev: &CongestionEvent) {
        let mss = self.win.mss() as f64;
        let cwnd_segs = self.win.cwnd() as f64 / mss;
        // Fast convergence (RFC 8312 §4.6).
        self.w_max = if cwnd_segs < self.w_max {
            cwnd_segs * (1.0 + BETA) / 2.0
        } else {
            cwnd_segs
        };
        self.k = (self.w_max * (1.0 - BETA) / C).cbrt();
        self.epoch_start = Some(ev.now);
        self.w_est = cwnd_segs * BETA;
        self.win.multiplicative_decrease(BETA);
    }

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {
        self.epoch_start = None;
        self.w_max = 0.0;
        self.win.rto_collapse();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// The reference: a cube root and cubic evaluation per congestion
    /// event plus per-ack curve stepping. Factor 1.0 *defines* the energy
    /// model's reference CC cost.
    fn compute_cost_factor(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack_at, congestion_at};
    use netsim::time::SimTime;

    const MSS: u32 = 1000;

    /// Drive one RTT's worth of acks at time `now`.
    fn window_of_acks(cc: &mut Cubic, now: SimTime) {
        let w = cc.cwnd();
        let mut acked = 0;
        while acked < w {
            cc.on_ack(&ack_at(MSS as u64, now));
            acked += MSS as u64;
        }
    }

    #[test]
    fn k_formula_matches_rfc() {
        let mut cc = Cubic::new(MSS);
        // Get to 100 segments then lose.
        cc.on_ack(&ack_at(90_000, SimTime::ZERO));
        assert_eq!(cc.cwnd(), 100_000);
        cc.on_congestion_event(&congestion_at(100_000, SimTime::from_secs(1)));
        // W_max = 100, K = cbrt(100 * 0.3 / 0.4) = cbrt(75) ~ 4.217 s.
        assert!((cc.k - 4.217).abs() < 0.01, "K={}", cc.k);
        assert_eq!(cc.cwnd(), 70_000);
    }

    #[test]
    fn window_recovers_toward_w_max() {
        let mut cc = Cubic::new(MSS);
        cc.on_ack(&ack_at(90_000, SimTime::ZERO));
        cc.on_congestion_event(&congestion_at(100_000, SimTime::from_secs(1)));
        // Drive acks over the epoch; by t = K the window must be close
        // to W_max again, and it must grow monotonically.
        let mut prev = cc.cwnd();
        for ms in (1100..5300).step_by(100) {
            window_of_acks(&mut cc, SimTime::from_millis(ms));
            assert!(cc.cwnd() >= prev, "cubic growth must be monotone");
            prev = cc.cwnd();
        }
        let at_k = cc.cwnd() as f64 / 1000.0;
        assert!(
            (at_k - 100.0).abs() < 10.0,
            "at t~K window should be near W_max: {at_k} segs"
        );
    }

    #[test]
    fn plateau_is_flat_then_probes() {
        let mut cc = Cubic::new(MSS);
        cc.on_ack(&ack_at(90_000, SimTime::ZERO));
        cc.on_congestion_event(&congestion_at(100_000, SimTime::from_secs(1)));
        // Well past K the curve grows beyond W_max.
        for ms in (1100..9000).step_by(50) {
            window_of_acks(&mut cc, SimTime::from_millis(ms));
        }
        assert!(
            cc.cwnd() > 110_000,
            "past the plateau CUBIC probes beyond W_max: {}",
            cc.cwnd()
        );
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_back_to_back_losses() {
        let mut cc = Cubic::new(MSS);
        cc.on_ack(&ack_at(90_000, SimTime::ZERO));
        cc.on_congestion_event(&congestion_at(100_000, SimTime::from_secs(1)));
        let w_max_1 = cc.w_max;
        // Second loss before recovering to W_max.
        cc.on_congestion_event(&congestion_at(70_000, SimTime::from_secs(2)));
        assert!(
            cc.w_max < w_max_1,
            "fast convergence: w_max {} -> {}",
            w_max_1,
            cc.w_max
        );
    }

    #[test]
    fn tcp_friendly_floor_tracks_reno() {
        let mut cc = Cubic::new(MSS);
        cc.on_ack(&ack_at(9_000, SimTime::ZERO)); // small window
        cc.on_congestion_event(&congestion_at(19_000, SimTime::from_secs(1)));
        let w0 = cc.cwnd();
        // At tiny windows the cubic term is glacial; the Reno estimate
        // should still push the window up about one MSS per RTT.
        for i in 0..10u64 {
            window_of_acks(&mut cc, SimTime::from_millis(1000 + i));
        }
        assert!(
            cc.cwnd() >= w0 + 5_000,
            "friendly region must grow Reno-like: {} from {w0}",
            cc.cwnd()
        );
    }

    #[test]
    fn rto_resets_epoch() {
        let mut cc = Cubic::new(MSS);
        cc.on_ack(&ack_at(90_000, SimTime::ZERO));
        cc.on_congestion_event(&congestion_at(100_000, SimTime::from_secs(1)));
        cc.on_rto(SimTime::from_secs(2), MSS);
        assert_eq!(cc.cwnd(), 1000);
        assert!(cc.epoch_start.is_none());
    }

    #[test]
    fn identity() {
        let cc = Cubic::new(MSS);
        assert_eq!(cc.name(), "cubic");
        assert_eq!(cc.compute_cost_factor(), 1.0);
    }
}
