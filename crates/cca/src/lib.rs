//! # cca — the paper's ten congestion control algorithms
//!
//! From-scratch implementations of every algorithm benchmarked in
//! "Green With Envy" §3, against the `transport` crate's
//! [`transport::cc::CongestionControl`] trait:
//!
//! | name | reference | module |
//! |---|---|---|
//! | `reno` | RFC 5681 | [`reno`] |
//! | `cubic` | RFC 8312 | [`cubic`] |
//! | `dctcp` | Alizadeh et al., SIGCOMM '10 | [`dctcp`] |
//! | `vegas` | Brakmo & Peterson, SIGCOMM '94 | [`vegas`] |
//! | `westwood` | Gerla et al., GLOBECOM '01 | [`westwood`] |
//! | `highspeed` | RFC 3649 | [`highspeed`] |
//! | `scalable` | Kelly, CCR '03 | [`scalable`] |
//! | `bbr` | Cardwell et al., CACM '17 | [`bbr`] |
//! | `bbr2` (alpha) | IETF-104 slides, 2019 | [`bbr`] |
//! | `baseline` | the paper's constant-cwnd kernel module | [`baseline`] |
//!
//! Beyond the paper's ten, the §5 "benchmark the production algorithms"
//! call is answered with [`swift`] (SIGCOMM '20) and [`hpcc`]
//! (SIGCOMM '19, over the simulator's INT telemetry substrate) — see
//! [`registry::CcaKind::EXTENDED`].
//!
//! Each controller also carries a `compute_cost_factor` — its relative
//! per-ack computation cost, which the energy model multiplies into the
//! per-ack Joule charge. Factors are calibrated to reproduce the measured
//! power ordering of the paper's Figure 6 (see `DESIGN.md`).

#![warn(missing_docs)]

pub mod baseline;
pub mod bbr;
pub mod common;
pub mod cubic;
pub mod dctcp;
pub mod highspeed;
pub mod hpcc;
pub mod registry;
pub mod reno;
pub mod scalable;
pub mod swift;
pub mod vegas;
pub mod westwood;

pub use registry::{CcaConfig, CcaKind};

/// Builders of synthetic [`transport::cc::AckEvent`]s for algorithm unit
/// tests.
#[cfg(test)]
pub(crate) mod testutil {
    use netsim::time::{SimDuration, SimTime};
    use netsim::units::Rate;
    use transport::cc::{AckEvent, CongestionEvent};

    /// A minimal ack: `bytes` newly acked in `round`.
    pub fn ack(bytes: u64, round: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO,
            newly_acked_bytes: bytes,
            rtt_sample: Some(SimDuration::from_micros(100)),
            srtt: SimDuration::from_micros(100),
            min_rtt: SimDuration::from_micros(100),
            bytes_in_flight: 0,
            delivery_rate: None,
            app_limited: false,
            ce_marked_bytes: 0,
            ecn_echo: false,
            cum_acked: 0,
            round,
            in_recovery: false,
            int: netsim::packet::IntRecord::default(),
            cwnd_limited: true,
        }
    }

    /// An ack at a specific time.
    pub fn ack_at(bytes: u64, now: SimTime) -> AckEvent {
        AckEvent {
            now,
            ..ack(bytes, 0)
        }
    }

    /// An ack in a specific round at a specific time with a given RTT.
    pub fn ack_at_round(bytes: u64, now: SimTime, round: u64, rtt_us: u64) -> AckEvent {
        AckEvent {
            now,
            rtt_sample: Some(SimDuration::from_micros(rtt_us)),
            srtt: SimDuration::from_micros(rtt_us),
            min_rtt: SimDuration::from_micros(rtt_us),
            ..ack(bytes, round)
        }
    }

    /// An ack with distinct current and minimum RTTs (Vegas tests).
    pub fn ack_with_rtt(
        bytes: u64,
        now: SimTime,
        round: u64,
        rtt_us: u64,
        base_us: u64,
    ) -> AckEvent {
        AckEvent {
            now,
            rtt_sample: Some(SimDuration::from_micros(rtt_us)),
            srtt: SimDuration::from_micros(rtt_us),
            min_rtt: SimDuration::from_micros(base_us),
            ..ack(bytes, round)
        }
    }

    /// An ack carrying CE-marked bytes and a cumulative position.
    pub fn ack_marked(bytes: u64, marked: u64, cum: u64) -> AckEvent {
        AckEvent {
            ce_marked_bytes: marked,
            cum_acked: cum,
            ..ack(bytes, 0)
        }
    }

    /// The full-fat ack used by BBR tests: delivery rate and flight.
    pub fn ack_full(
        bytes: u64,
        now: SimTime,
        round: u64,
        rtt_us: u64,
        min_rtt_us: u64,
        rate_gbps: Option<f64>,
        flight: u64,
    ) -> AckEvent {
        AckEvent {
            now,
            rtt_sample: Some(SimDuration::from_micros(rtt_us)),
            srtt: SimDuration::from_micros(rtt_us),
            min_rtt: SimDuration::from_micros(min_rtt_us),
            bytes_in_flight: flight,
            delivery_rate: rate_gbps.map(Rate::from_gbps),
            ..ack(bytes, round)
        }
    }

    /// A congestion event at the given flight size.
    pub fn congestion(flight: u64) -> CongestionEvent {
        CongestionEvent {
            now: SimTime::ZERO,
            bytes_in_flight: flight,
            srtt: SimDuration::from_micros(100),
        }
    }

    /// A congestion event at a specific time.
    pub fn congestion_at(flight: u64, now: SimTime) -> CongestionEvent {
        CongestionEvent {
            now,
            ..congestion(flight)
        }
    }
}
