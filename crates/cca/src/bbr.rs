//! BBR: congestion-based congestion control (Cardwell et al., CACM 2017),
//! plus the BBRv2 alpha the paper benchmarked (IETF-104 presentation,
//! March 2019).
//!
//! Both versions share the same skeleton — a windowed-max delivery-rate
//! filter, a windowed-min RTT filter, and a state machine
//! STARTUP → DRAIN → PROBE_BW (+ periodic PROBE_RTT) — and differ in
//! parameters and loss reaction. [`BbrCore`] implements the skeleton;
//! [`Bbr`] instantiates v1 and [`Bbr2`] the alpha-release v2 with its
//! conservative cruise gains and loss backoff. The paper found the alpha
//! ~40% less energy-efficient than v1; in this model that comes from the
//! alpha's lower average utilization (longer FCT at slightly lower
//! power), which is exactly the mechanism §4.3 hypothesizes.

use crate::common::MIN_CWND_SEGS;
use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;
use std::collections::VecDeque;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// 2/ln(2): the STARTUP gain that doubles the sending rate per RTT.
pub const STARTUP_GAIN: f64 = 2.885;
/// Rounds of <25% bandwidth growth before declaring the pipe full (v1).
pub const FULL_BW_ROUNDS_V1: u32 = 3;
/// Max-bandwidth filter window, in round trips.
pub const BW_WINDOW_ROUNDS: u64 = 10;
/// Min-RTT filter window.
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// PROBE_RTT duration.
pub const PROBE_RTT_TIME: SimDuration = SimDuration::from_millis(200);
/// v1's PROBE_BW pacing-gain cycle.
pub const CYCLE_V1: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// The alpha v2's cycle: long conservative cruise phases between probes.
/// This reproduces the alpha's measured under-utilization.
pub const CYCLE_V2_ALPHA: [f64; 8] = [1.25, 0.55, 0.55, 0.55, 0.55, 0.55, 0.55, 1.0];

/// Windowed max filter over delivery-rate samples, one slot per round.
#[derive(Debug, Default)]
struct MaxBwFilter {
    window: VecDeque<(u64, f64)>,
}

impl MaxBwFilter {
    fn update(&mut self, round: u64, sample_bps: f64) {
        match self.window.back_mut() {
            Some(back) if back.0 == round => back.1 = back.1.max(sample_bps),
            _ => self.window.push_back((round, sample_bps)),
        }
        while let Some(&(r, _)) = self.window.front() {
            if r + BW_WINDOW_ROUNDS <= round {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    fn get_bps(&self) -> f64 {
        self.window.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }
}

/// The BBR state machine phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Exponential rate search.
    Startup,
    /// Deflate the queue built during startup.
    Drain,
    /// Steady-state bandwidth probing.
    ProbeBw,
    /// Periodic RTT re-measurement at a minimal window.
    ProbeRtt,
}

/// Version-specific parameters.
#[derive(Clone, Copy, Debug)]
pub struct BbrParams {
    /// PROBE_BW pacing-gain cycle.
    pub cycle: &'static [f64],
    /// cwnd gain in PROBE_BW.
    pub cwnd_gain: f64,
    /// Rounds without 25% growth before exiting STARTUP.
    pub full_bw_rounds: u32,
    /// Growth threshold per round to keep STARTUP alive.
    pub full_bw_thresh: f64,
    /// Whether losses shrink the in-flight bound (v2).
    pub reacts_to_loss: bool,
    /// Multiplier applied to the in-flight cap after a loss round (v2's
    /// `inflight_hi` backoff).
    pub loss_backoff: f64,
    /// Relative per-ack compute cost for the energy model.
    pub compute_cost: f64,
}

/// v1 parameters.
pub const PARAMS_V1: BbrParams = BbrParams {
    cycle: &CYCLE_V1,
    cwnd_gain: 2.0,
    full_bw_rounds: FULL_BW_ROUNDS_V1,
    full_bw_thresh: 1.25,
    reacts_to_loss: false,
    loss_backoff: 1.0,
    compute_cost: 0.5,
};

/// Alpha-release v2 parameters: earlier startup exit, conservative cruise,
/// loss backoff, heavier per-ack bookkeeping (dual filters and bounds).
pub const PARAMS_V2_ALPHA: BbrParams = BbrParams {
    cycle: &CYCLE_V2_ALPHA,
    cwnd_gain: 2.0,
    full_bw_rounds: 2,
    full_bw_thresh: 1.10,
    reacts_to_loss: true,
    loss_backoff: 0.85,
    compute_cost: 1.5,
};

/// The shared BBR engine.
#[derive(Debug)]
pub struct BbrCore {
    name: &'static str,
    params: BbrParams,
    mss: u32,
    mode: Mode,
    max_bw: MaxBwFilter,
    min_rtt: SimDuration,
    min_rtt_stamp: SimTime,
    probe_rtt_done: Option<SimTime>,
    prior_cwnd: u64,
    full_bw_bps: f64,
    full_bw_count: u32,
    cycle_idx: usize,
    cycle_stamp: SimTime,
    pacing_gain: f64,
    cwnd: u64,
    last_round: u64,
    /// v2 in-flight upper bound (`u64::MAX` until a loss).
    inflight_hi: u64,
}

impl BbrCore {
    fn new(name: &'static str, params: BbrParams, mss: u32) -> Self {
        BbrCore {
            name,
            params,
            mss,
            mode: Mode::Startup,
            max_bw: MaxBwFilter::default(),
            min_rtt: SimDuration::MAX,
            min_rtt_stamp: SimTime::ZERO,
            probe_rtt_done: None,
            prior_cwnd: 0,
            full_bw_bps: 0.0,
            full_bw_count: 0,
            cycle_idx: 2,
            cycle_stamp: SimTime::ZERO,
            pacing_gain: STARTUP_GAIN,
            cwnd: 10 * mss as u64,
            last_round: 0,
            inflight_hi: u64::MAX,
        }
    }

    /// Current phase (tests and traces).
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current bandwidth estimate.
    pub fn bw_estimate(&self) -> Rate {
        Rate::from_bps(self.max_bw.get_bps())
    }

    /// Estimated bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        let bw = self.max_bw.get_bps();
        if bw <= 0.0 || self.min_rtt == SimDuration::MAX {
            return 0;
        }
        (bw / 8.0 * self.min_rtt.as_secs_f64()) as u64
    }

    fn min_cwnd(&self) -> u64 {
        4 * self.mss as u64
    }

    fn check_full_pipe(&mut self) {
        if self.mode != Mode::Startup {
            return;
        }
        let bw = self.max_bw.get_bps();
        if bw >= self.full_bw_bps * self.params.full_bw_thresh {
            self.full_bw_bps = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= self.params.full_bw_rounds {
            self.mode = Mode::Drain;
            self.pacing_gain = 1.0 / STARTUP_GAIN;
        }
    }

    fn advance_cycle(&mut self, now: SimTime) {
        let rtt = if self.min_rtt == SimDuration::MAX {
            SimDuration::from_millis(1)
        } else {
            self.min_rtt
        };
        if now.saturating_since(self.cycle_stamp) >= rtt {
            self.cycle_idx = (self.cycle_idx + 1) % self.params.cycle.len();
            self.cycle_stamp = now;
        }
        self.pacing_gain = self.params.cycle[self.cycle_idx];
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        // Min-RTT filter. The estimate only moves down — or rebuilds from
        // scratch during PROBE_RTT, which is entered when it goes stale.
        if let Some(rtt) = ev.rtt_sample {
            if rtt <= self.min_rtt {
                self.min_rtt = rtt;
                self.min_rtt_stamp = ev.now;
            }
        }

        // Max-bandwidth filter; app-limited samples only raise the max.
        if let Some(rate) = ev.delivery_rate {
            if !ev.app_limited || rate.bps() > self.max_bw.get_bps() {
                self.max_bw.update(ev.round, rate.bps());
            }
        }

        let new_round = ev.round != self.last_round;
        self.last_round = ev.round;
        if new_round {
            self.check_full_pipe();
        }

        // Mode transitions.
        match self.mode {
            Mode::Startup => {}
            Mode::Drain => {
                if ev.bytes_in_flight <= self.bdp_bytes() {
                    self.mode = Mode::ProbeBw;
                    self.cycle_idx = 2;
                    self.cycle_stamp = ev.now;
                    self.pacing_gain = 1.0;
                }
            }
            Mode::ProbeBw => self.advance_cycle(ev.now),
            Mode::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done {
                    if ev.now >= done {
                        self.min_rtt_stamp = ev.now;
                        self.probe_rtt_done = None;
                        self.mode = Mode::ProbeBw;
                        self.cycle_idx = 2;
                        self.cycle_stamp = ev.now;
                        self.cwnd = self.prior_cwnd.max(self.min_cwnd());
                    }
                }
            }
        }

        // PROBE_RTT entry: the min-RTT estimate went stale. Drop to a
        // minimal window and rebuild the estimate from the drained path.
        if self.mode != Mode::ProbeRtt
            && self.min_rtt != SimDuration::MAX
            && ev.now.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW
        {
            self.mode = Mode::ProbeRtt;
            self.prior_cwnd = self.cwnd;
            self.probe_rtt_done = Some(ev.now + PROBE_RTT_TIME);
            self.min_rtt = SimDuration::MAX;
            self.min_rtt_stamp = ev.now;
        }

        // Window update.
        match self.mode {
            Mode::ProbeRtt => {
                self.cwnd = self.min_cwnd();
            }
            Mode::Startup => {
                // Grow by acked bytes (exponential, paced by the gain),
                // bounded by the startup gain times the current BDP
                // estimate — unbounded growth would blow past the
                // bottleneck buffer long before the plateau detector fires.
                let bdp = self.bdp_bytes();
                let grown = self.cwnd + ev.newly_acked_bytes;
                self.cwnd = if bdp > 0 {
                    grown.min(((STARTUP_GAIN * bdp as f64) as u64).max(10 * self.mss as u64))
                } else {
                    grown
                };
            }
            _ => {
                let target =
                    ((self.params.cwnd_gain * self.bdp_bytes() as f64) as u64).max(self.min_cwnd());
                self.cwnd = if self.cwnd < target {
                    (self.cwnd + ev.newly_acked_bytes).min(target)
                } else {
                    target
                };
            }
        }
        if self.params.reacts_to_loss {
            self.cwnd = self.cwnd.min(self.inflight_hi);
        }
        self.cwnd = self.cwnd.max(MIN_CWND_SEGS * self.mss as u64);

        if self.mode == Mode::Startup {
            self.pacing_gain = STARTUP_GAIN;
        }
    }

    fn on_congestion_event(&mut self, ev: &CongestionEvent) {
        if !self.params.reacts_to_loss {
            return; // v1 sails through losses
        }
        // v2: clamp the in-flight ceiling below the level that just lost.
        let level = ev.bytes_in_flight.max(self.min_cwnd());
        self.inflight_hi = ((level as f64 * self.params.loss_backoff) as u64).max(self.min_cwnd());
        if self.mode == Mode::Startup {
            // The alpha exits startup on the first loss round.
            self.mode = Mode::Drain;
            self.pacing_gain = 1.0 / STARTUP_GAIN;
        }
    }

    fn on_rto(&mut self) {
        self.prior_cwnd = self.cwnd;
        self.cwnd = self.mss as u64;
    }

    fn pacing_rate(&self) -> Option<Rate> {
        let bw = self.max_bw.get_bps();
        if bw <= 0.0 {
            return None; // startup before the first sample: unpaced burst
        }
        Some(Rate::from_bps(bw * self.pacing_gain))
    }
}

macro_rules! bbr_variant {
    ($(#[$doc:meta])* $name:ident, $label:literal, $params:expr) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            core: BbrCore,
        }

        impl $name {
            /// Construct for segments of `mss` bytes.
            pub fn new(mss: u32) -> Self {
                $name {
                    core: BbrCore::new($label, $params, mss),
                }
            }

            /// Current state-machine phase.
            pub fn mode(&self) -> Mode {
                self.core.mode()
            }

            /// Current bandwidth estimate.
            pub fn bw_estimate(&self) -> Rate {
                self.core.bw_estimate()
            }

            /// Estimated BDP in bytes.
            pub fn bdp_bytes(&self) -> u64 {
                self.core.bdp_bytes()
            }
        }

        impl CongestionControl for $name {
            fn name(&self) -> &'static str {
                self.core.name
            }
            fn on_ack(&mut self, ev: &AckEvent) {
                self.core.on_ack(ev);
            }
            fn on_congestion_event(&mut self, ev: &CongestionEvent) {
                self.core.on_congestion_event(ev);
            }
            fn on_rto(&mut self, _now: SimTime, _mss: u32) {
                self.core.on_rto();
            }
            fn cwnd(&self) -> u64 {
                self.core.cwnd
            }
            fn pacing_rate(&self) -> Option<Rate> {
                self.core.pacing_rate()
            }
            fn uses_pacing(&self) -> bool {
                true
            }
            fn compute_cost_factor(&self) -> f64 {
                self.core.params.compute_cost
            }
        }
    };
}

bbr_variant!(
    /// BBR v1: model-based, loss-agnostic, near-full utilization.
    Bbr,
    "bbr",
    PARAMS_V1
);
bbr_variant!(
    /// The BBRv2 **alpha** (the release the paper measured): earlier
    /// startup exit, conservative cruise gains, and loss backoff. Its
    /// lower average utilization is the modeled source of the ~40% energy
    /// gap the paper reports between the BBR versions.
    Bbr2,
    "bbr2",
    PARAMS_V2_ALPHA
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ack_full;
    use netsim::time::SimTime;

    const MSS: u32 = 1000;

    /// Feed steady acks at `gbps` delivery rate and `rtt_us` RTT,
    /// advancing one round per `rtt_us`.
    fn cruise<T: CongestionControl>(
        cc: &mut T,
        start_round: u64,
        rounds: u64,
        gbps: f64,
        rtt_us: u64,
        start: SimTime,
    ) -> SimTime {
        let mut now = start;
        for r in 0..rounds {
            // 4 acks per round.
            for _ in 0..4 {
                now += SimDuration::from_micros(rtt_us / 4);
                cc.on_ack(&ack_full(
                    25_000,
                    now,
                    start_round + r,
                    rtt_us,
                    rtt_us,
                    Some(gbps),
                    (gbps * 1e9 / 8.0 * rtt_us as f64 * 1e-6) as u64,
                ));
            }
        }
        now
    }

    #[test]
    fn startup_exits_to_drain_when_bw_plateaus() {
        let mut cc = Bbr::new(MSS);
        assert_eq!(cc.mode(), Mode::Startup);
        // Growing bandwidth: stays in startup.
        let mut now = SimTime::ZERO;
        for (r, g) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            now = cruise(&mut cc, r as u64, 1, *g, 100, now);
        }
        assert_eq!(cc.mode(), Mode::Startup);
        // Plateau at 8 Gbps for several rounds: exits.
        cruise(&mut cc, 10, 6, 8.0, 100, now);
        assert_ne!(cc.mode(), Mode::Startup, "must leave startup on plateau");
    }

    #[test]
    fn reaches_probe_bw_and_tracks_bdp() {
        let mut cc = Bbr::new(MSS);
        let now = cruise(&mut cc, 0, 20, 8.0, 100, SimTime::ZERO);
        let _ = now;
        assert_eq!(cc.mode(), Mode::ProbeBw);
        // BDP = 8 Gb/s * 100 us = 100 KB; cwnd ~ 2 * BDP.
        let bdp = cc.bdp_bytes();
        assert!((90_000..110_000).contains(&bdp), "bdp={bdp}");
        let cwnd = cc.cwnd();
        assert!(
            (150_000..250_000).contains(&cwnd),
            "cwnd={cwnd} should be ~2x BDP"
        );
    }

    #[test]
    fn pacing_rate_follows_estimate() {
        let mut cc = Bbr::new(MSS);
        assert!(cc.pacing_rate().is_none(), "unpaced before first sample");
        cruise(&mut cc, 0, 20, 8.0, 100, SimTime::ZERO);
        let pr = cc.pacing_rate().unwrap().gbps();
        // In PROBE_BW gains cycle in [0.75, 1.25].
        assert!((5.0..11.0).contains(&pr), "pacing={pr}");
    }

    #[test]
    fn probe_rtt_dips_after_stale_min_rtt() {
        let mut cc = Bbr::new(MSS);
        let now = cruise(&mut cc, 0, 20, 8.0, 100, SimTime::ZERO);
        assert_eq!(cc.mode(), Mode::ProbeBw);
        // Keep cruising with *higher* RTT samples for > 10 s so the min
        // estimate goes stale.
        let mut t = now + SimDuration::from_secs(11);
        cc.on_ack(&ack_full(25_000, t, 100, 150, 100, Some(8.0), 100_000));
        assert_eq!(cc.mode(), Mode::ProbeRtt);
        assert_eq!(cc.cwnd(), 4 * MSS as u64);
        // After 200 ms it exits and restores.
        t += SimDuration::from_millis(250);
        cc.on_ack(&ack_full(25_000, t, 101, 100, 100, Some(8.0), 4_000));
        assert_eq!(cc.mode(), Mode::ProbeBw);
        assert!(cc.cwnd() > 4 * MSS as u64);
    }

    #[test]
    fn v1_ignores_loss() {
        let mut cc = Bbr::new(MSS);
        cruise(&mut cc, 0, 20, 8.0, 100, SimTime::ZERO);
        let before = cc.cwnd();
        cc.on_congestion_event(&transport::cc::CongestionEvent {
            now: SimTime::from_secs(1),
            bytes_in_flight: before,
            srtt: SimDuration::from_micros(100),
        });
        assert_eq!(cc.cwnd(), before, "v1 sails through losses");
    }

    #[test]
    fn v2_alpha_backs_off_on_loss() {
        let mut cc = Bbr2::new(MSS);
        cruise(&mut cc, 0, 20, 8.0, 100, SimTime::ZERO);
        let before = cc.cwnd();
        cc.on_congestion_event(&transport::cc::CongestionEvent {
            now: SimTime::from_secs(1),
            bytes_in_flight: before,
            srtt: SimDuration::from_micros(100),
        });
        // The inflight ceiling now binds the window below the loss level.
        let mut now = SimTime::from_secs(1);
        now += SimDuration::from_micros(100);
        cc.on_ack(&ack_full(25_000, now, 30, 100, 100, Some(8.0), 100_000));
        assert!(
            cc.cwnd() <= (before as f64 * 0.85) as u64 + MSS as u64,
            "cwnd={} before={before}",
            cc.cwnd()
        );
    }

    #[test]
    fn v2_alpha_cruises_below_v1() {
        // Average pacing gain of the alpha's cycle must be distinctly
        // below v1's: that is the modeled inefficiency.
        let avg = |c: &[f64]| c.iter().sum::<f64>() / c.len() as f64;
        assert!(avg(&CYCLE_V2_ALPHA) < avg(&CYCLE_V1) - 0.1);
    }

    #[test]
    fn rto_collapses_window() {
        let mut cc = Bbr::new(MSS);
        cruise(&mut cc, 0, 20, 8.0, 100, SimTime::ZERO);
        cc.on_rto(SimTime::from_secs(1), MSS);
        assert_eq!(cc.cwnd(), MSS as u64);
    }

    #[test]
    fn identities() {
        assert_eq!(Bbr::new(MSS).name(), "bbr");
        assert_eq!(Bbr2::new(MSS).name(), "bbr2");
        assert!(Bbr2::new(MSS).compute_cost_factor() > Bbr::new(MSS).compute_cost_factor());
    }
}
