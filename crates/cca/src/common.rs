//! Shared window arithmetic for the loss-based algorithms.
//!
//! Most classic CCAs share the RFC 5681 skeleton — slow start below
//! `ssthresh`, some additive/multiplicative rule above it, a window
//! collapse on RTO — and differ only in their increase/decrease rules.
//! [`WindowCore`] centralizes the shared parts so each algorithm module
//! contains only what makes it itself.

/// Congestion window + slow-start threshold bookkeeping, in bytes.
#[derive(Clone, Debug)]
pub struct WindowCore {
    cwnd: u64,
    ssthresh: u64,
    mss: u32,
}

/// Minimum congestion window: 2 segments (RFC 5681).
pub const MIN_CWND_SEGS: u64 = 2;

/// Upper clamp on any congestion window: 16 GiB. No experiment in this
/// workspace needs more; the clamp turns runaway-growth bugs into visible
/// plateaus instead of silent u64 overflow.
pub const MAX_CWND_BYTES: u64 = 1 << 34;

impl WindowCore {
    /// Start with `init_segs` segments and no threshold.
    pub fn new(mss: u32, init_segs: u64) -> Self {
        assert!(mss > 0 && init_segs > 0);
        WindowCore {
            cwnd: init_segs * mss as u64,
            ssthresh: u64::MAX,
            mss,
        }
    }

    /// Current window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current window in (fractional) segments.
    pub fn cwnd_segs(&self) -> f64 {
        self.cwnd as f64 / self.mss as f64
    }

    /// Slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// Segment size.
    pub fn mss(&self) -> u32 {
        self.mss
    }

    /// True while below the slow-start threshold.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Set the window directly (clamped to the valid range).
    pub fn set_cwnd(&mut self, bytes: u64) {
        self.cwnd = bytes
            .max(MIN_CWND_SEGS * self.mss as u64)
            .min(MAX_CWND_BYTES);
    }

    /// Set the window without the two-segment floor (BBR's PROBE_RTT and
    /// RTO collapse go to one segment).
    pub fn set_cwnd_min_one(&mut self, bytes: u64) {
        self.cwnd = bytes.max(self.mss as u64);
    }

    /// Set the slow-start threshold (clamped to two segments).
    pub fn set_ssthresh(&mut self, bytes: u64) {
        self.ssthresh = bytes.max(MIN_CWND_SEGS * self.mss as u64);
    }

    /// RFC 5681 byte-counted slow start: grow by the acked bytes, capped
    /// at `ssthresh`. Only meaningful while [`Self::in_slow_start`].
    pub fn slow_start_increase(&mut self, acked_bytes: u64) {
        debug_assert!(self.in_slow_start());
        let grown = self.cwnd.saturating_add(acked_bytes);
        self.cwnd = if self.ssthresh == u64::MAX {
            grown.min(MAX_CWND_BYTES)
        } else {
            grown.min(self.ssthresh).min(MAX_CWND_BYTES)
        };
    }

    /// Classic congestion-avoidance additive increase:
    /// `cwnd += mss * acked / cwnd` (byte-counted Reno).
    pub fn reno_ca_increase(&mut self, acked_bytes: u64) {
        let inc = (self.mss as u128 * acked_bytes as u128 / self.cwnd.max(1) as u128) as u64;
        self.cwnd += inc.max(1).min(self.mss as u64);
    }

    /// Multiplicative decrease to `factor * cwnd`, updating ssthresh too.
    pub fn multiplicative_decrease(&mut self, factor: f64) {
        debug_assert!((0.0..1.0).contains(&factor));
        let target = (self.cwnd as f64 * factor) as u64;
        self.set_ssthresh(target);
        self.set_cwnd(target);
    }

    /// RTO collapse: `ssthresh = flight/2`, `cwnd = 1 segment`.
    pub fn rto_collapse(&mut self) {
        self.set_ssthresh(self.cwnd / 2);
        self.cwnd = self.mss as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_window() {
        let mut w = WindowCore::new(1000, 10);
        assert!(w.in_slow_start());
        // Acking a full window doubles it.
        w.slow_start_increase(10_000);
        assert_eq!(w.cwnd(), 20_000);
    }

    #[test]
    fn slow_start_respects_ssthresh() {
        let mut w = WindowCore::new(1000, 10);
        w.set_ssthresh(12_000);
        w.slow_start_increase(10_000);
        assert_eq!(w.cwnd(), 12_000, "growth stops at ssthresh");
        assert!(!w.in_slow_start());
    }

    #[test]
    fn reno_ca_adds_one_mss_per_window() {
        let mut w = WindowCore::new(1000, 10);
        w.set_ssthresh(10_000); // in CA from the start
                                // Ack a full window in 10 acks.
        for _ in 0..10 {
            w.reno_ca_increase(1000);
        }
        // cwnd grows ~1 mss per RTT (slightly more as cwnd sits at 10-11k).
        assert!(
            w.cwnd() >= 10_900 && w.cwnd() <= 11_100,
            "cwnd={}",
            w.cwnd()
        );
    }

    #[test]
    fn ca_increase_never_exceeds_one_mss_per_ack() {
        let mut w = WindowCore::new(1000, 2);
        w.set_ssthresh(2000);
        w.reno_ca_increase(100_000); // absurdly large stretch ack
        assert!(w.cwnd() <= 3000);
    }

    #[test]
    fn multiplicative_decrease_halves() {
        let mut w = WindowCore::new(1000, 100);
        w.multiplicative_decrease(0.5);
        assert_eq!(w.cwnd(), 50_000);
        assert_eq!(w.ssthresh(), 50_000);
    }

    #[test]
    fn decrease_clamps_at_two_segments() {
        let mut w = WindowCore::new(1000, 2);
        w.multiplicative_decrease(0.5);
        assert_eq!(w.cwnd(), 2000);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut w = WindowCore::new(1000, 100);
        w.rto_collapse();
        assert_eq!(w.cwnd(), 1000);
        assert_eq!(w.ssthresh(), 50_000);
        assert!(w.in_slow_start());
    }
}
