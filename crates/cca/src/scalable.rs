//! Scalable TCP (Kelly, CCR 2003).
//!
//! MIMD rules built for high bandwidth-delay products: in congestion
//! avoidance the window grows by a fixed 0.01 segments per acked segment
//! (so recovery time after a loss is invariant in the window size), and a
//! loss multiplies the window by 0.875.

use crate::common::WindowCore;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// Per-acked-segment increase, in segments (Kelly's `a = 0.01`).
pub const A: f64 = 0.01;
/// Multiplicative decrease (Kelly's `b = 0.125` -> factor 0.875).
pub const BETA: f64 = 0.875;
/// Below this window (segments) Scalable behaves like Reno (the paper's
/// "legacy window" threshold).
pub const LEGACY_WINDOW_SEGS: f64 = 16.0;

/// Scalable TCP.
#[derive(Debug)]
pub struct Scalable {
    win: WindowCore,
    /// Fractional window accumulator in bytes.
    frac: f64,
}

impl Scalable {
    /// A Scalable controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Scalable {
            win: WindowCore::new(mss, 10),
            frac: 0.0,
        }
    }
}

impl CongestionControl for Scalable {
    fn name(&self) -> &'static str {
        "scalable"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.newly_acked_bytes == 0 || ev.in_recovery || !ev.cwnd_limited {
            return;
        }
        if self.win.in_slow_start() {
            self.win.slow_start_increase(ev.newly_acked_bytes);
            return;
        }
        if self.win.cwnd_segs() < LEGACY_WINDOW_SEGS {
            self.win.reno_ca_increase(ev.newly_acked_bytes);
            return;
        }
        // MIMD: +A segments per acked segment, accumulated fractionally.
        self.frac += A * ev.newly_acked_bytes as f64;
        if self.frac >= 1.0 {
            let whole = self.frac.floor();
            self.win.set_cwnd(self.win.cwnd() + whole as u64);
            self.frac -= whole;
        }
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        self.win.multiplicative_decrease(BETA);
    }

    fn on_rto(&mut self, _now: netsim::time::SimTime, _mss: u32) {
        self.win.rto_collapse();
        self.frac = 0.0;
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// Trivial per-ack arithmetic (one fused multiply-add); calibrated to
    /// the paper's Fig. 6 ordering, where scalable sits low.
    fn compute_cost_factor(&self) -> f64 {
        0.75
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, congestion};

    fn into_ca(cc: &mut Scalable, cwnd_target_segs: u64) {
        // Grow in slow start, then fix ssthresh below cwnd via a loss.
        while cc.cwnd() < cwnd_target_segs * 1000 * 8 / 7 {
            cc.on_ack(&ack(cc.cwnd(), 0));
        }
        cc.on_congestion_event(&congestion(cc.cwnd()));
    }

    #[test]
    fn mimd_increase_is_proportional() {
        let mut cc = Scalable::new(1000);
        into_ca(&mut cc, 200);
        let w0 = cc.cwnd();
        // Ack one full window: growth should be ~1% of the window.
        let mut acked = 0;
        while acked < w0 {
            cc.on_ack(&ack(1000, 0));
            acked += 1000;
        }
        let growth = cc.cwnd() - w0;
        let expected = (A * w0 as f64) as u64;
        assert!(
            (growth as i64 - expected as i64).unsigned_abs() <= 1000,
            "growth={growth} expected~{expected}"
        );
    }

    #[test]
    fn decrease_is_gentle() {
        let mut cc = Scalable::new(1000);
        into_ca(&mut cc, 200);
        let before = cc.cwnd();
        cc.on_congestion_event(&congestion(before));
        let after = cc.cwnd();
        assert!((after as f64 / before as f64 - BETA).abs() < 0.01);
    }

    #[test]
    fn small_windows_fall_back_to_reno() {
        let mut cc = Scalable::new(1000);
        // Force a tiny CA window.
        cc.on_congestion_event(&congestion(10_000));
        cc.on_congestion_event(&congestion(10_000));
        let w0 = cc.cwnd();
        assert!(cc.cwnd() / 1000 < 16);
        for _ in 0..w0.div_ceil(1000) {
            cc.on_ack(&ack(1000, 0));
        }
        // Reno-style: ~1 MSS per window of acked bytes.
        let growth = cc.cwnd() - w0;
        assert!((800..=1200).contains(&growth), "growth={growth} w0={w0}");
    }

    #[test]
    fn rto_collapse() {
        let mut cc = Scalable::new(1000);
        cc.on_ack(&ack(100_000, 0));
        cc.on_rto(netsim::time::SimTime::ZERO, 1000);
        assert_eq!(cc.cwnd(), 1000);
    }

    #[test]
    fn identity() {
        let cc = Scalable::new(1000);
        assert_eq!(cc.name(), "scalable");
        assert!(cc.compute_cost_factor() < 1.0);
    }
}
