//! The paper's custom baseline module (§3): "a new kernel module that
//! replaces any CC mechanism with a large, constant cwnd value ... the
//! baseline to compare the energy consumption of CC-only computations."
//!
//! All other TCP machinery (RTO, SACK, loss recovery) still runs; only the
//! window never moves and no per-ack CC arithmetic happens. As the paper
//! notes (footnote 2), this module must never be used with competing
//! flows — it has no congestion response and would collapse the network.

use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// The constant-cwnd baseline.
#[derive(Debug)]
pub struct Baseline {
    cwnd: u64,
}

impl Baseline {
    /// A baseline with an explicit constant window.
    pub fn new(cwnd_bytes: u64) -> Self {
        assert!(cwnd_bytes > 0);
        Baseline { cwnd: cwnd_bytes }
    }

    /// The paper sizes the constant "large": comfortably above the path
    /// BDP plus the bottleneck buffer, so the sender is never
    /// window-limited and bursts freely into the queue.
    pub fn sized_for(bdp_bytes: u64, buffer_bytes: u64) -> Self {
        Baseline::new(2 * (bdp_bytes + buffer_bytes).max(1))
    }
}

impl CongestionControl for Baseline {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn initial_cwnd(&self, _mss: u32) -> u64 {
        self.cwnd
    }

    fn on_ack(&mut self, _ev: &AckEvent) {}

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {}

    fn on_rto(&mut self, _now: netsim::time::SimTime, _mss: u32) {}

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// No CC computation at all — the whole point of the baseline.
    fn compute_cost_factor(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, congestion};

    #[test]
    fn window_never_moves() {
        let mut cc = Baseline::new(5_000_000);
        cc.on_ack(&ack(100_000, 1));
        cc.on_congestion_event(&congestion(1_000_000));
        cc.on_rto(netsim::time::SimTime::ZERO, 1448);
        assert_eq!(cc.cwnd(), 5_000_000);
    }

    #[test]
    fn sized_for_exceeds_pipe_plus_buffer() {
        let cc = Baseline::sized_for(125_000, 1_000_000);
        assert!(cc.cwnd() > 1_125_000);
    }

    #[test]
    fn zero_compute_cost() {
        assert_eq!(Baseline::new(1).compute_cost_factor(), 0.0);
        assert_eq!(Baseline::new(1).name(), "baseline");
    }
}
