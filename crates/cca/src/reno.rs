//! TCP Reno / NewReno (RFC 5681, RFC 6582).
//!
//! The canonical AIMD algorithm: slow start, +1 MSS per RTT in congestion
//! avoidance, halve on loss, collapse to one segment on RTO.

use crate::common::WindowCore;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// Reno's multiplicative-decrease factor.
pub const BETA: f64 = 0.5;

/// TCP Reno.
#[derive(Debug)]
pub struct Reno {
    win: WindowCore,
}

impl Reno {
    /// A Reno controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Reno {
            win: WindowCore::new(mss, 10),
        }
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.newly_acked_bytes == 0 || ev.in_recovery || !ev.cwnd_limited {
            return;
        }
        if self.win.in_slow_start() {
            self.win.slow_start_increase(ev.newly_acked_bytes);
        } else {
            self.win.reno_ca_increase(ev.newly_acked_bytes);
        }
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        self.win.multiplicative_decrease(BETA);
    }

    fn on_rto(&mut self, _now: netsim::time::SimTime, _mss: u32) {
        self.win.rto_collapse();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// Reno's per-ack work is one add and one compare — yet the measured
    /// testbed power for Reno is comparatively high (paper Fig. 6, where
    /// reno ranks 8th of 10). The factor is calibrated to the measured
    /// ordering, not to instruction counts; see `DESIGN.md`.
    fn compute_cost_factor(&self) -> f64 {
        0.85
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, congestion};

    #[test]
    fn slow_start_then_ca() {
        let mut cc = Reno::new(1000);
        let initial = cc.cwnd();
        assert_eq!(initial, 10_000);
        // Ack one window: doubles in slow start.
        cc.on_ack(&ack(10_000, 0));
        assert_eq!(cc.cwnd(), 20_000);
        // Force CA.
        cc.on_congestion_event(&congestion(20_000));
        assert_eq!(cc.cwnd(), 10_000);
        assert_eq!(cc.ssthresh(), 10_000);
        // One window of acks in CA: ~ +1 MSS.
        for _ in 0..10 {
            cc.on_ack(&ack(1000, 0));
        }
        assert!(
            cc.cwnd() >= 10_900 && cc.cwnd() <= 11_100,
            "cwnd={}",
            cc.cwnd()
        );
    }

    #[test]
    fn halves_on_congestion() {
        let mut cc = Reno::new(1000);
        cc.on_ack(&ack(90_000, 0));
        let before = cc.cwnd();
        cc.on_congestion_event(&congestion(before));
        assert_eq!(cc.cwnd(), before / 2);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut cc = Reno::new(1000);
        cc.on_ack(&ack(50_000, 0));
        cc.on_rto(netsim::time::SimTime::ZERO, 1000);
        assert_eq!(cc.cwnd(), 1000);
        assert!(cc.cwnd() < cc.ssthresh());
    }

    #[test]
    fn no_growth_during_recovery() {
        let mut cc = Reno::new(1000);
        let before = cc.cwnd();
        let mut ev = ack(1000, 0);
        ev.in_recovery = true;
        cc.on_ack(&ev);
        assert_eq!(cc.cwnd(), before);
    }

    #[test]
    fn name_and_cost() {
        let cc = Reno::new(1000);
        assert_eq!(cc.name(), "reno");
        assert!(cc.compute_cost_factor() > 0.0);
        assert!(!cc.wants_ecn());
        assert!(cc.pacing_rate().is_none());
    }
}
