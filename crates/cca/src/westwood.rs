//! TCP Westwood / Westwood+ (Gerla et al., GLOBECOM 2001).
//!
//! Reno-style growth, but on congestion the window is set from an
//! *end-to-end bandwidth estimate*: `ssthresh = bw_est * rtt_min`, so a
//! random (non-congestion) loss does not halve an otherwise-full pipe.
//! The Westwood+ filter is used: acked bytes are accumulated per RTT and
//! the per-RTT sample is EWMA-smoothed.

use crate::common::WindowCore;
use netsim::time::{SimDuration, SimTime};
use netsim::units::Rate;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// EWMA weight of a new per-RTT bandwidth sample (Westwood+ uses 1/8).
pub const FILTER_GAIN: f64 = 0.125;

/// TCP Westwood+.
#[derive(Debug)]
pub struct Westwood {
    win: WindowCore,
    /// Smoothed bandwidth estimate in bytes/sec.
    bw_est: f64,
    /// Bytes acked in the current measurement round.
    acked_this_round: u64,
    round_started_at: SimTime,
    last_round: u64,
    min_rtt: SimDuration,
}

impl Westwood {
    /// A Westwood+ controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Westwood {
            win: WindowCore::new(mss, 10),
            bw_est: 0.0,
            acked_this_round: 0,
            round_started_at: SimTime::ZERO,
            last_round: 0,
            min_rtt: SimDuration::MAX,
        }
    }

    /// The current bandwidth estimate.
    pub fn bw_estimate(&self) -> Rate {
        Rate::from_bps(self.bw_est * 8.0)
    }

    fn bdp_bytes(&self) -> u64 {
        if self.min_rtt == SimDuration::MAX {
            return 0;
        }
        (self.bw_est * self.min_rtt.as_secs_f64()) as u64
    }
}

impl CongestionControl for Westwood {
    fn name(&self) -> &'static str {
        "westwood"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.min_rtt < self.min_rtt {
            self.min_rtt = ev.min_rtt;
        }
        self.acked_this_round += ev.newly_acked_bytes;
        if ev.round != self.last_round {
            // Round boundary: fold the per-RTT sample into the filter.
            let elapsed = ev.now.saturating_since(self.round_started_at);
            if !elapsed.is_zero() && self.acked_this_round > 0 {
                let sample = self.acked_this_round as f64 / elapsed.as_secs_f64();
                self.bw_est = if self.bw_est == 0.0 {
                    sample
                } else {
                    (1.0 - FILTER_GAIN) * self.bw_est + FILTER_GAIN * sample
                };
            }
            self.acked_this_round = 0;
            self.round_started_at = ev.now;
            self.last_round = ev.round;
        }
        if ev.newly_acked_bytes == 0 || ev.in_recovery || !ev.cwnd_limited {
            return;
        }
        if self.win.in_slow_start() {
            self.win.slow_start_increase(ev.newly_acked_bytes);
        } else {
            self.win.reno_ca_increase(ev.newly_acked_bytes);
        }
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        let bdp = self.bdp_bytes();
        if bdp > 0 {
            // Faster recovery than Reno when the loss wasn't congestive:
            // sit exactly at the estimated pipe.
            self.win.set_ssthresh(bdp);
            self.win.set_cwnd(self.win.cwnd().min(bdp));
        } else {
            self.win.multiplicative_decrease(0.5);
        }
    }

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {
        let bdp = self.bdp_bytes();
        if bdp > 0 {
            self.win.set_ssthresh(bdp);
        }
        self.win.set_cwnd_min_one(self.win.mss() as u64);
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// A divide + EWMA per round and min-tracking per ack; calibrated to
    /// the measured Fig. 6 ordering.
    fn compute_cost_factor(&self) -> f64 {
        0.55
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack_at_round, congestion};
    use netsim::time::SimTime;

    /// Feed `rounds` RTT rounds of `bytes_per_round` at `rtt` spacing.
    fn feed(cc: &mut Westwood, rounds: u64, bytes_per_round: u64, rtt_us: u64) {
        for r in 0..rounds {
            let now = SimTime::from_micros((r + 1) * rtt_us);
            // Two acks per round, then the round rolls over.
            cc.on_ack(&ack_at_round(bytes_per_round / 2, now, r + 1, rtt_us));
            cc.on_ack(&ack_at_round(bytes_per_round / 2, now, r + 1, rtt_us));
        }
    }

    #[test]
    fn bandwidth_estimate_converges() {
        let mut cc = Westwood::new(1000);
        // 1 MB per 1 ms round = 8 Gbps.
        feed(&mut cc, 50, 1_000_000, 1000);
        let est = cc.bw_estimate().gbps();
        assert!((est - 8.0).abs() < 1.0, "bw_est={est} Gbps");
    }

    #[test]
    fn congestion_sets_window_to_estimated_bdp() {
        let mut cc = Westwood::new(1000);
        feed(&mut cc, 50, 1_000_000, 1000);
        cc.on_congestion_event(&congestion(cc.cwnd()));
        // BDP = ~1 GB/s * 1 ms = ~1 MB.
        let cwnd = cc.cwnd();
        assert!(
            (800_000..=1_200_000).contains(&cwnd),
            "cwnd={cwnd} should sit near the 1 MB BDP"
        );
    }

    #[test]
    fn no_estimate_falls_back_to_halving() {
        let mut cc = Westwood::new(1000);
        let before = cc.cwnd();
        cc.on_congestion_event(&congestion(before));
        assert_eq!(cc.cwnd(), before / 2);
    }

    #[test]
    fn rto_collapses_but_keeps_bdp_threshold() {
        let mut cc = Westwood::new(1000);
        feed(&mut cc, 50, 1_000_000, 1000);
        cc.on_rto(SimTime::from_secs(1), 1000);
        assert_eq!(cc.cwnd(), 1000);
        assert!(cc.ssthresh() > 500_000, "ssthresh={}", cc.ssthresh());
    }

    #[test]
    fn grows_like_reno_between_losses() {
        let mut cc = Westwood::new(1000);
        let w0 = cc.cwnd();
        cc.on_ack(&ack_at_round(w0, SimTime::from_micros(100), 0, 100));
        assert_eq!(cc.cwnd(), 2 * w0, "slow start doubles");
    }

    #[test]
    fn identity() {
        assert_eq!(Westwood::new(1000).name(), "westwood");
    }
}
