//! The algorithm registry: every CCA the paper benchmarks, constructible
//! by kernel-style name, plus per-algorithm transport policy (ack policy,
//! ECN) — the analogue of `sysctl net.ipv4.tcp_congestion_control`.

use crate::baseline::Baseline;
use crate::bbr::{Bbr, Bbr2};
use crate::cubic::Cubic;
use crate::dctcp::Dctcp;
use crate::highspeed::HighSpeed;
use crate::hpcc::Hpcc;
use crate::reno::Reno;
use crate::scalable::Scalable;
use crate::swift::Swift;
use crate::vegas::Vegas;
use crate::westwood::Westwood;
use transport::cc::CongestionControl;
use transport::receiver::AckPolicy;

/// Construction parameters shared by all algorithms.
#[derive(Clone, Copy, Debug)]
pub struct CcaConfig {
    /// Segment payload size in bytes.
    pub mss: u32,
    /// Constant window for the baseline module, in bytes.
    pub baseline_cwnd: u64,
}

impl CcaConfig {
    /// Config for a given MSS with a baseline window sized for the
    /// paper's testbed path (10 Gb/s, ~100 µs RTT, 1 MB buffer).
    pub fn new(mss: u32) -> Self {
        CcaConfig {
            mss,
            baseline_cwnd: 2 * (125_000 + 1_000_000),
        }
    }

    /// Override the baseline window.
    pub fn with_baseline_cwnd(mut self, cwnd: u64) -> Self {
        self.baseline_cwnd = cwnd;
        self
    }
}

/// The ten algorithms of the paper's §3, by kernel name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CcaKind {
    Reno,
    Cubic,
    Dctcp,
    Vegas,
    Westwood,
    Highspeed,
    Scalable,
    Bbr,
    Bbr2,
    Baseline,
    /// Google's production delay-based algorithm (SIGCOMM '20) — §5's
    /// benchmark call, not part of the paper's measured set.
    Swift,
    /// Alibaba's INT-driven algorithm (SIGCOMM '19) — §5's benchmark
    /// call, not part of the paper's measured set.
    Hpcc,
}

impl CcaKind {
    /// The §5 production algorithms implemented beyond the paper's set.
    pub const EXTENDED: [CcaKind; 2] = [CcaKind::Swift, CcaKind::Hpcc];

    /// Every algorithm *the paper measures*, in the paper's Figure-5
    /// x-axis order (MTU-1500 energy, ascending). The extended algorithms
    /// are deliberately not part of the reproduction campaign.
    pub const ALL: [CcaKind; 10] = [
        CcaKind::Bbr,
        CcaKind::Westwood,
        CcaKind::Highspeed,
        CcaKind::Scalable,
        CcaKind::Reno,
        CcaKind::Vegas,
        CcaKind::Dctcp,
        CcaKind::Cubic,
        CcaKind::Baseline,
        CcaKind::Bbr2,
    ];

    /// The kernel-style name.
    pub fn name(self) -> &'static str {
        match self {
            CcaKind::Reno => "reno",
            CcaKind::Cubic => "cubic",
            CcaKind::Dctcp => "dctcp",
            CcaKind::Vegas => "vegas",
            CcaKind::Westwood => "westwood",
            CcaKind::Highspeed => "highspeed",
            CcaKind::Scalable => "scalable",
            CcaKind::Bbr => "bbr",
            CcaKind::Bbr2 => "bbr2",
            CcaKind::Baseline => "baseline",
            CcaKind::Swift => "swift",
            CcaKind::Hpcc => "hpcc",
        }
    }

    /// Parse a kernel-style name.
    pub fn from_name(name: &str) -> Option<CcaKind> {
        CcaKind::ALL
            .into_iter()
            .chain(CcaKind::EXTENDED)
            .find(|k| k.name() == name)
    }

    /// Build a controller instance.
    pub fn build(self, cfg: &CcaConfig) -> Box<dyn CongestionControl> {
        match self {
            CcaKind::Reno => Box::new(Reno::new(cfg.mss)),
            CcaKind::Cubic => Box::new(Cubic::new(cfg.mss)),
            CcaKind::Dctcp => Box::new(Dctcp::new(cfg.mss)),
            CcaKind::Vegas => Box::new(Vegas::new(cfg.mss)),
            CcaKind::Westwood => Box::new(Westwood::new(cfg.mss)),
            CcaKind::Highspeed => Box::new(HighSpeed::new(cfg.mss)),
            CcaKind::Scalable => Box::new(Scalable::new(cfg.mss)),
            CcaKind::Bbr => Box::new(Bbr::new(cfg.mss)),
            CcaKind::Bbr2 => Box::new(Bbr2::new(cfg.mss)),
            CcaKind::Baseline => Box::new(Baseline::new(cfg.baseline_cwnd)),
            CcaKind::Swift => Box::new(Swift::new(cfg.mss)),
            CcaKind::Hpcc => Box::new(Hpcc::new(cfg.mss)),
        }
    }

    /// The receiver ack policy this algorithm expects: DCTCP runs its
    /// CE-aware state machine; everything else uses standard delayed acks.
    pub fn ack_policy(self) -> AckPolicy {
        match self {
            CcaKind::Dctcp => AckPolicy::dctcp_default(),
            _ => AckPolicy::delayed_default(),
        }
    }

    /// True for algorithms safe to run with competing flows. The baseline
    /// has no congestion response (paper footnote 2).
    pub fn multi_flow_safe(self) -> bool {
        self != CcaKind::Baseline
    }
}

impl std::fmt::Display for CcaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in CcaKind::ALL {
            assert_eq!(CcaKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CcaKind::from_name("nope"), None);
    }

    #[test]
    fn all_build_and_report_their_name() {
        let cfg = CcaConfig::new(1448);
        for kind in CcaKind::ALL {
            let cc = kind.build(&cfg);
            assert_eq!(cc.name(), kind.name());
            assert!(cc.cwnd() > 0);
        }
    }

    #[test]
    fn only_dctcp_wants_ecn() {
        let cfg = CcaConfig::new(1448);
        for kind in CcaKind::ALL {
            let cc = kind.build(&cfg);
            assert_eq!(cc.wants_ecn(), kind == CcaKind::Dctcp, "{kind}");
        }
    }

    #[test]
    fn dctcp_gets_ce_aware_acks() {
        assert!(matches!(
            CcaKind::Dctcp.ack_policy(),
            AckPolicy::DctcpCeAware { .. }
        ));
        assert!(matches!(
            CcaKind::Cubic.ack_policy(),
            AckPolicy::Delayed { .. }
        ));
    }

    #[test]
    fn baseline_is_multi_flow_unsafe() {
        assert!(!CcaKind::Baseline.multi_flow_safe());
        assert!(CcaKind::Cubic.multi_flow_safe());
    }

    #[test]
    fn baseline_window_is_configurable() {
        let cfg = CcaConfig::new(1448).with_baseline_cwnd(42_000);
        let cc = CcaKind::Baseline.build(&cfg);
        assert_eq!(cc.cwnd(), 42_000);
    }

    #[test]
    fn compute_costs_span_the_expected_range() {
        let cfg = CcaConfig::new(1448);
        let cost = |k: CcaKind| k.build(&cfg).compute_cost_factor();
        assert_eq!(cost(CcaKind::Baseline), 0.0);
        assert_eq!(cost(CcaKind::Cubic), 1.0);
        assert!(cost(CcaKind::Bbr2) > cost(CcaKind::Bbr));
        assert!(cost(CcaKind::Scalable) < cost(CcaKind::Reno));
    }
}
