//! DCTCP (Alizadeh et al., SIGCOMM 2010).
//!
//! The data-center algorithm: switches mark packets past a shallow
//! threshold K; the receiver echoes the exact sequence of marks; the
//! sender maintains `alpha`, an EWMA of the *fraction* of marked bytes
//! per window, and once per window scales the window down by
//! `alpha / 2` — a reduction proportional to the amount of congestion
//! rather than Reno's blunt halving.

use crate::common::WindowCore;
use netsim::time::SimTime;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// EWMA gain for alpha (the paper recommends g = 1/16).
pub const G: f64 = 1.0 / 16.0;

/// DCTCP.
#[derive(Debug)]
pub struct Dctcp {
    win: WindowCore,
    /// EWMA of the marked-byte fraction.
    alpha: f64,
    /// Bytes acked in the current observation window.
    acked_bytes: u64,
    /// Of which CE-marked.
    marked_bytes: u64,
    /// The window ends when `cum_acked` passes this sequence.
    window_end: u64,
}

impl Dctcp {
    /// A DCTCP controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Dctcp {
            win: WindowCore::new(mss, 10),
            alpha: 0.0,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: 0,
        }
    }

    /// The current congestion estimate `alpha` in `[0, 1]`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.acked_bytes += ev.newly_acked_bytes;
        self.marked_bytes += ev.ce_marked_bytes;

        if ev.cum_acked >= self.window_end {
            // One observation window has passed: fold in the fraction.
            if self.acked_bytes > 0 {
                let f = (self.marked_bytes as f64 / self.acked_bytes as f64).min(1.0);
                self.alpha = (1.0 - G) * self.alpha + G * f;
                if self.marked_bytes > 0 {
                    // Proportional reduction, once per window.
                    let cwnd = self.win.cwnd() as f64;
                    let target = cwnd * (1.0 - self.alpha / 2.0);
                    self.win.set_ssthresh(target as u64);
                    self.win.set_cwnd(target as u64);
                }
            }
            self.acked_bytes = 0;
            self.marked_bytes = 0;
            self.window_end = ev.cum_acked + self.win.cwnd();
        }

        if ev.newly_acked_bytes == 0 || ev.in_recovery || !ev.cwnd_limited {
            return;
        }
        if ev.ce_marked_bytes > 0 {
            return; // no growth on marked acks
        }
        if self.win.in_slow_start() {
            self.win.slow_start_increase(ev.newly_acked_bytes);
        } else {
            self.win.reno_ca_increase(ev.newly_acked_bytes);
        }
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        // Actual loss: fall back to a Reno-style halving (DCTCP paper §3).
        self.win.multiplicative_decrease(0.5);
    }

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {
        self.win.rto_collapse();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    fn wants_ecn(&self) -> bool {
        true
    }

    /// Per-ack mark accounting plus the EWMA per window — and DCTCP's ack
    /// policy generates up to twice the acks of a delayed-ack algorithm,
    /// which the energy model charges separately. Calibrated to Fig. 6,
    /// where DCTCP draws the most power.
    fn compute_cost_factor(&self) -> f64 {
        0.475
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, ack_marked, congestion};

    #[test]
    fn alpha_stays_zero_without_marks() {
        let mut cc = Dctcp::new(1000);
        for i in 0..50 {
            let mut ev = ack(1000, 0);
            ev.cum_acked = (i + 1) * 1000;
            cc.on_ack(&ev);
        }
        assert_eq!(cc.alpha(), 0.0);
        assert!(cc.cwnd() > 10_000, "grows like Reno without marks");
    }

    #[test]
    fn alpha_converges_to_mark_fraction() {
        let mut cc = Dctcp::new(1000);
        // Every window fully marked: alpha -> 1.
        let mut cum = 0;
        for _ in 0..200 {
            cum += 1000;
            cc.on_ack(&ack_marked(1000, 1000, cum));
        }
        assert!(cc.alpha() > 0.9, "alpha={}", cc.alpha());
    }

    #[test]
    fn fully_marked_windows_halve_eventually() {
        let mut cc = Dctcp::new(1000);
        // Leave slow start at 100 segs.
        let mut ev = ack(90_000, 0);
        ev.cum_acked = 90_000;
        cc.on_ack(&ev);
        let w0 = cc.cwnd();
        // Alpha needs ~16 observation windows (g = 1/16) to saturate, and
        // each window spans ~cwnd bytes: drive a few MB of marked acks.
        let mut cum = 90_000;
        for _ in 0..3000 {
            cum += 1000;
            cc.on_ack(&ack_marked(1000, 1000, cum));
        }
        // With alpha ~ 1 the reduction approaches cwnd/2 per window.
        assert!(cc.cwnd() < w0 / 2, "cwnd={} w0={w0}", cc.cwnd());
    }

    #[test]
    fn light_marking_gives_gentle_reduction() {
        let mut cc = Dctcp::new(1000);
        let mut ev = ack(90_000, 0);
        ev.cum_acked = 90_000;
        cc.on_ack(&ev);
        cc.on_congestion_event(&congestion(cc.cwnd())); // pin into CA
        let w0 = cc.cwnd();
        // ~10% of bytes marked for several windows.
        let mut cum = 90_000u64;
        for i in 0..300u64 {
            cum += 1000;
            let marked = if i % 10 == 0 { 1000 } else { 0 };
            cc.on_ack(&ack_marked(1000, marked, cum));
        }
        let drop_frac = 1.0 - cc.cwnd() as f64 / w0 as f64;
        // Reduction should be far gentler than halving, and alpha ~ 0.1.
        assert!(
            cc.alpha() > 0.02 && cc.alpha() < 0.3,
            "alpha={}",
            cc.alpha()
        );
        assert!(drop_frac < 0.5, "drop={drop_frac}");
    }

    #[test]
    fn loss_still_halves() {
        let mut cc = Dctcp::new(1000);
        let w0 = cc.cwnd();
        cc.on_congestion_event(&congestion(w0));
        assert_eq!(cc.cwnd(), w0 / 2);
    }

    #[test]
    fn wants_ecn_and_identity() {
        let cc = Dctcp::new(1000);
        assert!(cc.wants_ecn());
        assert_eq!(cc.name(), "dctcp");
    }

    #[test]
    fn rto_collapse() {
        let mut cc = Dctcp::new(1000);
        cc.on_rto(SimTime::ZERO, 1000);
        assert_eq!(cc.cwnd(), 1000);
    }
}
