//! HPCC — High Precision Congestion Control (Li et al., SIGCOMM 2019),
//! another of the §5 production algorithms. HPCC steers the window from
//! **in-band network telemetry**: every INT-capable hop reports its queue
//! occupancy and link utilization, and the sender holds the most-utilized
//! hop at a target utilization `ETA` just *below* 1 — near-zero queues at
//! near-full throughput.
//!
//! Control law (single-bottleneck form of the paper's §4.3):
//!
//! ```text
//! U = qlen / (B * T_base) + txRate / B        (from the INT record)
//! W = W_ref / (U / ETA) + W_AI                (multiplicative-style)
//! ```
//!
//! with `W_ref` synchronized to the current window once per round trip,
//! and `W_AI` a small additive term for fairness convergence.

use crate::common::WindowCore;
use netsim::time::SimTime;
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// Target utilization of the most-loaded hop.
pub const ETA: f64 = 0.95;
/// Additive increase per update, in segments.
pub const W_AI_SEGS: f64 = 0.5;
/// Bound on the per-update multiplicative change (stability guard).
pub const MAX_STEP: f64 = 2.0;

/// HPCC.
#[derive(Debug)]
pub struct Hpcc {
    win: WindowCore,
    /// Reference window, synchronized once per round.
    w_ref: u64,
    last_round: u64,
}

impl Hpcc {
    /// An HPCC controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        let win = WindowCore::new(mss, 10);
        let w_ref = win.cwnd();
        Hpcc {
            win,
            w_ref,
            last_round: 0,
        }
    }
}

impl CongestionControl for Hpcc {
    fn name(&self) -> &'static str {
        "hpcc"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.newly_acked_bytes == 0 || ev.in_recovery {
            return;
        }
        // Reference-window sync once per round trip.
        if ev.round != self.last_round {
            self.last_round = ev.round;
            self.w_ref = self.win.cwnd();
        }
        if !ev.int.is_stamped() || ev.min_rtt == netsim::time::SimDuration::MAX {
            // No telemetry (non-INT path): fall back to slow-start-style
            // growth so the flow still works.
            if ev.cwnd_limited {
                self.win.slow_start_increase(ev.newly_acked_bytes);
            }
            return;
        }
        let t_base = ev.min_rtt.as_secs_f64();
        let u = ev.int.normalized_utilization(t_base);
        let mss = self.win.mss() as f64;

        if u <= 0.0 {
            return;
        }
        let ratio = (u / ETA).clamp(1.0 / MAX_STEP, MAX_STEP);
        let target = self.w_ref as f64 / ratio + W_AI_SEGS * mss;
        if target > self.win.cwnd() as f64 && !ev.cwnd_limited {
            return; // window validation: no untested growth
        }
        self.win.set_cwnd(target as u64);
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        // Telemetry normally prevents loss entirely; a real loss means the
        // INT view was stale — back off conservatively.
        self.win.multiplicative_decrease(0.5);
        self.w_ref = self.win.cwnd();
    }

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {
        self.win.rto_collapse();
        self.w_ref = self.win.cwnd();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// Per-ack INT parsing plus a divide; the heaviest per-ack pipeline
    /// of the set after the BBR family.
    fn compute_cost_factor(&self) -> f64 {
        1.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ack;
    use netsim::packet::IntRecord;

    const MSS: u32 = 1000;

    fn int_ack(bytes: u64, round: u64, queue: u32, util_x1000: u16) -> transport::cc::AckEvent {
        let mut ev = ack(bytes, round);
        ev.int = IntRecord {
            queue_bytes: queue,
            util_x1000,
            link_mbps: 10_000,
        };
        ev
    }

    #[test]
    fn underutilized_link_grows_window() {
        let mut cc = Hpcc::new(MSS);
        let w0 = cc.cwnd();
        // 40% utilization, empty queue: U = 0.4 << ETA.
        for r in 1..6 {
            cc.on_ack(&int_ack(1000, r, 0, 400));
        }
        assert!(cc.cwnd() > w0, "must grow toward ETA: {}", cc.cwnd());
    }

    #[test]
    fn overloaded_link_shrinks_window() {
        let mut cc = Hpcc::new(MSS);
        let w0 = cc.cwnd();
        // Fully utilized with a standing queue: U > 1.
        // queue of 125 KB at 10 Gb/s with T=100us: q/(B*T) = 1.0; U = 2.0.
        cc.on_ack(&int_ack(1000, 1, 125_000, 1000));
        assert!(cc.cwnd() < w0, "must shrink above ETA: {}", cc.cwnd());
    }

    #[test]
    fn converges_near_eta() {
        let mut cc = Hpcc::new(MSS);
        // Simulated closed loop: utilization proportional to cwnd.
        // capacity ~ 125 segments (10 Gb/s * 100 us).
        for r in 1..200 {
            let util = (cc.cwnd() as f64 / (125.0 * MSS as f64)).min(1.0);
            let queue = ((cc.cwnd() as f64) - 125.0 * MSS as f64).max(0.0) as u32;
            cc.on_ack(&int_ack(1000, r, queue, (util * 1000.0) as u16));
        }
        let util = cc.cwnd() as f64 / (125.0 * MSS as f64);
        assert!(
            (0.85..1.05).contains(&util),
            "steady-state utilization {util:.3} should sit near ETA"
        );
    }

    #[test]
    fn falls_back_without_telemetry() {
        let mut cc = Hpcc::new(MSS);
        let w0 = cc.cwnd();
        cc.on_ack(&ack(5000, 1)); // no INT stamp
        assert!(cc.cwnd() > w0, "non-INT paths still make progress");
    }

    #[test]
    fn loss_halves() {
        let mut cc = Hpcc::new(MSS);
        let w0 = cc.cwnd();
        cc.on_congestion_event(&crate::testutil::congestion(w0));
        assert_eq!(cc.cwnd(), w0 / 2);
        assert_eq!(cc.name(), "hpcc");
    }
}
