//! TCP Vegas (Brakmo & Peterson, SIGCOMM 1994).
//!
//! Delay-based congestion avoidance: once per RTT, compare the *expected*
//! rate `cwnd / baseRTT` with the *actual* rate `cwnd / RTT`. The
//! difference, expressed in segments queued at the bottleneck,
//! `diff = cwnd * (RTT - baseRTT) / RTT`, is steered between `ALPHA` and
//! `BETA` by ±1 segment per RTT. Slow start doubles only every other RTT
//! and exits once `diff > GAMMA`.

use crate::common::WindowCore;
use netsim::time::{SimDuration, SimTime};
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// Lower bound on queued segments (grow below this).
pub const ALPHA: f64 = 2.0;
/// Upper bound on queued segments (shrink above this).
pub const BETA: f64 = 4.0;
/// Slow-start exit threshold on queued segments.
pub const GAMMA: f64 = 1.0;

/// TCP Vegas.
#[derive(Debug)]
pub struct Vegas {
    win: WindowCore,
    /// Minimum RTT sample within the current round.
    round_min_rtt: SimDuration,
    rtt_samples_this_round: u32,
    last_round: u64,
    /// Doubling parity: Vegas slow start grows every *other* RTT.
    ss_grow_this_round: bool,
}

impl Vegas {
    /// A Vegas controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Vegas {
            win: WindowCore::new(mss, 10),
            round_min_rtt: SimDuration::MAX,
            rtt_samples_this_round: 0,
            last_round: 0,
            ss_grow_this_round: true,
        }
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if let Some(rtt) = ev.rtt_sample {
            self.round_min_rtt = self.round_min_rtt.min(rtt);
            self.rtt_samples_this_round += 1;
        }
        if ev.round == self.last_round {
            return; // decisions are per-RTT
        }
        self.last_round = ev.round;

        let enough_samples = self.rtt_samples_this_round >= 2;
        let rtt = self.round_min_rtt;
        self.round_min_rtt = SimDuration::MAX;
        self.rtt_samples_this_round = 0;

        if !enough_samples || ev.min_rtt == SimDuration::MAX || rtt == SimDuration::MAX {
            return;
        }
        if ev.in_recovery || !ev.cwnd_limited {
            // Not window-limited: the measured RTT says nothing about this
            // window's pressure on the path; hold (RFC 2861 spirit).
            return;
        }

        let base = ev.min_rtt.as_secs_f64();
        let cur = rtt.as_secs_f64().max(base);
        let cwnd = self.win.cwnd() as f64;
        let mss = self.win.mss() as f64;
        // Queued segments at the bottleneck.
        let diff = cwnd * (cur - base) / cur / mss;

        if self.win.in_slow_start() {
            if diff > GAMMA {
                // Leave slow start: one queued segment is enough.
                self.win.set_ssthresh(self.win.cwnd());
            } else if self.ss_grow_this_round {
                self.win.slow_start_increase(self.win.cwnd());
            }
            self.ss_grow_this_round = !self.ss_grow_this_round;
            return;
        }

        if diff < ALPHA {
            self.win.set_cwnd(self.win.cwnd() + mss as u64);
        } else if diff > BETA {
            self.win
                .set_cwnd(self.win.cwnd().saturating_sub(mss as u64));
        }
        // else: within [ALPHA, BETA], hold.
    }

    fn on_congestion_event(&mut self, _ev: &CongestionEvent) {
        // Vegas falls back to Reno behaviour on actual loss.
        self.win.multiplicative_decrease(0.5);
    }

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {
        self.win.rto_collapse();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// Per-ack min-tracking and one divide per RTT; calibrated to the
    /// measured Fig. 6 ordering.
    fn compute_cost_factor(&self) -> f64 {
        0.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack_with_rtt, congestion};
    use netsim::time::SimTime;

    /// One Vegas round: two acks with the given RTTs, then a round roll.
    fn round(cc: &mut Vegas, round: u64, rtt_us: u64, base_us: u64) {
        let now = SimTime::from_micros(round * 1000);
        // Two acks carrying samples inside round `round`...
        cc.on_ack(&ack_with_rtt(1000, now, round, rtt_us, base_us));
        cc.on_ack(&ack_with_rtt(1000, now, round, rtt_us, base_us));
        // ...and the round-crossing ack that triggers the decision.
        cc.on_ack(&ack_with_rtt(1000, now, round + 1, rtt_us, base_us));
    }

    #[test]
    fn grows_when_queue_below_alpha() {
        let mut cc = Vegas::new(1000);
        // Leave slow start first.
        cc.on_congestion_event(&congestion(cc.cwnd()));
        let w0 = cc.cwnd();
        // RTT == baseRTT: zero queued packets -> +1 MSS per round.
        round(&mut cc, 1, 100, 100);
        round(&mut cc, 2, 100, 100);
        assert_eq!(cc.cwnd(), w0 + 2000);
    }

    #[test]
    fn shrinks_when_queue_above_beta() {
        let mut cc = Vegas::new(1000);
        cc.on_congestion_event(&congestion(cc.cwnd()));
        let w0 = cc.cwnd(); // 5000 bytes = 5 segs
                            // base 100 us, current 1000 us: diff = 5 * 0.9 = 4.5 > BETA.
        round(&mut cc, 1, 1000, 100);
        assert_eq!(cc.cwnd(), w0 - 1000);
    }

    #[test]
    fn holds_inside_band() {
        let mut cc = Vegas::new(1000);
        cc.on_congestion_event(&congestion(cc.cwnd()));
        let w0 = cc.cwnd(); // 5 segs
                            // diff = 5 * (160-100)/160 ~= 1.9 ... wait, ALPHA=2: grows.
                            // Choose rtt so diff lands in (2, 4): diff = 5*(d)/cur.
                            // rtt=250: diff = 5*150/250 = 3.0 -> hold.
        round(&mut cc, 1, 250, 100);
        assert_eq!(cc.cwnd(), w0);
    }

    #[test]
    fn slow_start_doubles_every_other_round() {
        let mut cc = Vegas::new(1000);
        let w0 = cc.cwnd();
        // No queueing: stays in slow start; doubling parity alternates.
        round(&mut cc, 1, 100, 100); // grow round
        let w1 = cc.cwnd();
        round(&mut cc, 2, 100, 100); // hold round
        let w2 = cc.cwnd();
        assert_eq!(w1, 2 * w0);
        assert_eq!(w2, w1);
    }

    #[test]
    fn slow_start_exits_on_queue_buildup() {
        let mut cc = Vegas::new(1000);
        assert!(cc.cwnd() < cc.ssthresh());
        // 10 segs, rtt 150 vs base 100: diff = 10*50/150 = 3.3 > GAMMA.
        round(&mut cc, 1, 150, 100);
        assert_eq!(cc.ssthresh(), cc.cwnd(), "ssthresh pinned to cwnd");
    }

    #[test]
    fn loss_halves_window() {
        let mut cc = Vegas::new(1000);
        let w0 = cc.cwnd();
        cc.on_congestion_event(&congestion(w0));
        assert_eq!(cc.cwnd(), w0 / 2);
    }

    #[test]
    fn identity() {
        assert_eq!(Vegas::new(1000).name(), "vegas");
    }
}
