//! Swift (Kumar et al., SIGCOMM 2020) — Google's production delay-based
//! datacenter CCA. The paper's §5 names it as a production algorithm the
//! community should benchmark for energy; this is that benchmarkable
//! implementation, reduced to Swift's essential control law:
//!
//! * a **target delay** with a flow-scaling term (`fs_range / sqrt(cwnd)`)
//!   so small windows tolerate more queueing than large ones;
//! * additive increase while measured delay is below target;
//! * multiplicative decrease proportional to the delay *overshoot*,
//!   clamped by `MAX_MDF`, at most once per round trip.

use crate::common::WindowCore;
use netsim::time::{SimDuration, SimTime};
use transport::cc::{AckEvent, CongestionControl, CongestionEvent};

/// Additive-increase, in segments per round trip.
pub const AI_SEGS: f64 = 1.0;
/// Multiplicative-decrease aggressiveness.
pub const BETA: f64 = 0.8;
/// Maximum fraction removed by one decrease.
pub const MAX_MDF: f64 = 0.5;
/// Base queueing allowance above the propagation floor.
pub const BASE_TARGET: SimDuration = SimDuration::from_micros(50);
/// Flow-scaling range: extra target for tiny windows.
pub const FS_RANGE: SimDuration = SimDuration::from_micros(100);

/// Swift.
#[derive(Debug)]
pub struct Swift {
    win: WindowCore,
    /// Earliest time the next multiplicative decrease may trigger.
    next_decrease_after: SimTime,
}

impl Swift {
    /// A Swift controller for segments of `mss` bytes.
    pub fn new(mss: u32) -> Self {
        Swift {
            win: WindowCore::new(mss, 10),
            next_decrease_after: SimTime::ZERO,
        }
    }

    /// The current target delay for this window size, given the path's
    /// propagation floor.
    pub fn target_delay(&self, min_rtt: SimDuration) -> SimDuration {
        let fs = FS_RANGE.as_secs_f64() / self.win.cwnd_segs().max(1.0).sqrt();
        min_rtt + BASE_TARGET + SimDuration::from_secs_f64(fs)
    }
}

impl CongestionControl for Swift {
    fn name(&self) -> &'static str {
        "swift"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let (Some(rtt), true) = (ev.rtt_sample, ev.min_rtt != SimDuration::MAX) else {
            return;
        };
        if ev.newly_acked_bytes == 0 || ev.in_recovery {
            return;
        }
        let target = self.target_delay(ev.min_rtt);
        if rtt <= target {
            if !ev.cwnd_limited {
                return; // window validation: don't grow an untested window
            }
            // Additive increase: AI segments per window of acks.
            let mss = self.win.mss() as f64;
            let inc = AI_SEGS * mss * ev.newly_acked_bytes as f64 / self.win.cwnd() as f64;
            self.win.set_cwnd(self.win.cwnd() + inc.round() as u64);
        } else if ev.now >= self.next_decrease_after {
            // Proportional decrease, at most once per RTT.
            let overshoot = (rtt.as_secs_f64() - target.as_secs_f64()) / rtt.as_secs_f64();
            let factor = (1.0 - BETA * overshoot).max(1.0 - MAX_MDF);
            let target_w = (self.win.cwnd() as f64 * factor) as u64;
            self.win.set_ssthresh(target_w);
            self.win.set_cwnd(target_w);
            self.next_decrease_after = ev.now + ev.srtt;
        }
    }

    fn on_congestion_event(&mut self, ev: &CongestionEvent) {
        self.win.multiplicative_decrease(1.0 - MAX_MDF);
        self.next_decrease_after = ev.now + ev.srtt;
    }

    fn on_rto(&mut self, _now: SimTime, _mss: u32) {
        self.win.rto_collapse();
    }

    fn cwnd(&self) -> u64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.win.ssthresh()
    }

    /// Per-ack delay comparison, a square root for flow scaling, and
    /// timestamp bookkeeping: comparable to CUBIC's arithmetic.
    fn compute_cost_factor(&self) -> f64 {
        0.95
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack_with_rtt, congestion};
    use netsim::time::SimTime;

    const MSS: u32 = 1000;

    fn ev(bytes: u64, now_us: u64, rtt_us: u64, base_us: u64) -> transport::cc::AckEvent {
        ack_with_rtt(bytes, SimTime::from_micros(now_us), 0, rtt_us, base_us)
    }

    #[test]
    fn grows_below_target() {
        let mut cc = Swift::new(MSS);
        let w0 = cc.cwnd();
        // rtt == base: far below target.
        for i in 0..10 {
            cc.on_ack(&ev(1000, i * 10, 100, 100));
        }
        assert!(cc.cwnd() > w0, "must grow below target");
    }

    #[test]
    fn decreases_proportionally_above_target() {
        let mut cc = Swift::new(MSS);
        let w0 = cc.cwnd();
        // Huge delay: rtt 2000 us vs base 100 us -> max decrease.
        cc.on_ack(&ev(1000, 0, 2000, 100));
        assert!((cc.cwnd() as f64 - w0 as f64 * (1.0 - MAX_MDF)).abs() <= 1000.0);
        // Mild overshoot decreases less.
        let mut cc2 = Swift::new(MSS);
        let t = cc2
            .target_delay(SimDuration::from_micros(100))
            .as_secs_f64()
            * 1e6;
        cc2.on_ack(&ev(1000, 0, (t as u64) + 30, 100));
        assert!(cc2.cwnd() > cc.cwnd(), "mild overshoot cuts less");
    }

    #[test]
    fn decreases_at_most_once_per_rtt() {
        let mut cc = Swift::new(MSS);
        cc.on_ack(&ev(1000, 0, 2000, 100));
        let after_first = cc.cwnd();
        // Immediately after (within srtt), another bad sample: no cut.
        cc.on_ack(&ev(1000, 10, 2000, 100));
        assert_eq!(cc.cwnd(), after_first);
        // Well after one RTT: cuts again.
        cc.on_ack(&ev(1000, 10_000, 2000, 100));
        assert!(cc.cwnd() < after_first);
    }

    #[test]
    fn target_shrinks_with_window() {
        let mut cc = Swift::new(MSS);
        let small_target = cc.target_delay(SimDuration::from_micros(100));
        // Inflate the window.
        for i in 0..200 {
            cc.on_ack(&ev(10_000, i * 10, 100, 100));
        }
        let big_target = cc.target_delay(SimDuration::from_micros(100));
        assert!(
            big_target < small_target,
            "flow scaling: larger windows get tighter targets"
        );
    }

    #[test]
    fn loss_and_rto_behave() {
        let mut cc = Swift::new(MSS);
        let w0 = cc.cwnd();
        cc.on_congestion_event(&congestion(w0));
        assert_eq!(cc.cwnd(), w0 / 2);
        cc.on_rto(SimTime::ZERO, MSS);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert_eq!(cc.name(), "swift");
    }
}
