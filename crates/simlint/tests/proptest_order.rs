//! Walk-order independence: the full lint report — token findings,
//! call-graph taint, registry rules, suppression settlement — must be a
//! pure function of the file *set*. The OS readdir order that feeds the
//! real walk varies across filesystems; if any pass leaked that order
//! (a `HashMap`, an id assigned at visit time), diagnostics could
//! appear, vanish, or reorder between machines.
//!
//! The subject is the real workspace: every source file this repo
//! ships, linted under the committed `simlint.toml`, shuffled.
//!
//= DESIGN.md#inv-nondet-taint

use proptest::prelude::*;
use simlint::{config, lint_loaded, load_workspace, LoadedFile};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/simlint has a workspace root two levels up")
}

fn load() -> (Vec<LoadedFile>, config::Config, Option<String>) {
    let root = repo_root();
    let cfg_text =
        std::fs::read_to_string(root.join(simlint::CONFIG_FILE)).expect("workspace simlint.toml");
    let cfg = config::parse(&cfg_text, simlint::CONFIG_FILE).expect("config parses");
    let files = load_workspace(root, &cfg).expect("workspace loads");
    let lock = std::fs::read_to_string(root.join("schema.lock")).ok();
    (files, cfg, lock)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn report_is_independent_of_file_order(seed in 0u64..u64::MAX) {
        let (mut files, cfg, lock) = load();
        prop_assert!(files.len() > 50, "workspace walk looks broken");
        let baseline = lint_loaded(&files, &cfg, lock.as_deref()).render_json();

        // Fisher–Yates with a splitmix64 stream off the proptest seed —
        // cheap, and every permutation is reachable.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..files.len()).rev() {
            files.swap(i, (next() % (i as u64 + 1)) as usize);
        }

        let shuffled = lint_loaded(&files, &cfg, lock.as_deref()).render_json();
        prop_assert_eq!(baseline, shuffled);
    }
}
