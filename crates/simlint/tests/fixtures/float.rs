// Fixture: float-unordered-acc. Never compiled.
use std::collections::{BTreeMap, HashMap};

fn bad_sum(energy_by_flow: HashMap<u64, f64>) -> f64 {
    let total: f64 = energy_by_flow.values().sum();
    total
}

fn bad_fold(weights: HashMap<u64, f64>) -> f64 {
    weights.values().fold(0.0, |acc, w| acc + w)
}

// NOTE: the rule tracks container-typed names per file, so an ordered
// container must not reuse a name that is declared as a Hash container
// elsewhere in the same file (a deliberate, documented heuristic).
fn fine_ordered(ordered_energy: BTreeMap<u64, f64>) -> f64 {
    // Ordered container: commutativity concerns resolved by fixed order.
    ordered_energy.values().sum()
}

fn fine_lookup(m: HashMap<u64, f64>, k: u64) -> f64 {
    // Keyed access never observes iteration order. (The hash-container
    // rule still flags the type in determinism-scoped crates; this
    // fixture isolates the accumulation rule.)
    m.get(&k).copied().unwrap_or(0.0)
}
