// Fixture: raw-write. Never compiled.
use std::fs::{File, OpenOptions};

fn bad_writes(path: &str, body: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, body)?;
    let _f = File::create(path)?;
    let _o = OpenOptions::new().append(true).open(path)?;
    Ok(())
}

fn fine(path: &str) -> std::io::Result<String> {
    // Reads are unrestricted; only result-writing must go through persist.
    std::fs::read_to_string(path)
}
