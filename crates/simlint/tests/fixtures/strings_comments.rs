// Fixture: false-positive resistance. The only real finding in this file
// is the final `unwrap` — everything above hides forbidden tokens inside
// strings, raw strings, chars, and comments. Never compiled.

// HashMap Instant::now() fs::write unwrap() panic! — comment, no finding
/* SystemTime::now() in a block comment /* nested: SimRng::new(0) */ */

/// Doc comment telling users to avoid `x.unwrap()` and `HashMap` — prose.
fn camouflage() -> String {
    let a = "HashMap::new() and Instant::now() in a string";
    let b = r#"raw string: fs::write("x", b"y").unwrap() and "quoted" too"#;
    let c = 'u'; // a char, not the start of unwrap
    let lifetime_not_char: &'static str = "thread::current() in a string";
    format!("{a}{b}{c}{lifetime_not_char}")
}

fn the_one_real_finding(x: Option<u64>) -> u64 {
    x.unwrap()
}
