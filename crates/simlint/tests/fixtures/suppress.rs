// Fixture: suppression handling. Never compiled.

fn good_allow(x: Option<u64>) -> u64 {
    // simlint::allow(panic-hygiene, reason = "fixture: demonstrates a well-formed allow")
    x.unwrap()
}

fn trailing_allow(x: Option<u64>) -> u64 {
    x.unwrap() // simlint::allow(panic-hygiene, reason = "fixture: trailing form")
}

fn multi_rule(v: &[u8], n: usize) -> u64 {
    // simlint::allow(panic-hygiene, range-index, reason = "fixture: one reason may cover several rules on a line")
    v[..n].iter().map(|b| *b as u64).sum::<u64>() + v.first().map(|b| *b as u64).unwrap()
}

fn missing_reason(x: Option<u64>) -> u64 {
    // simlint::allow(panic-hygiene)
    x.unwrap()
}

fn unknown_rule(x: Option<u64>) -> u64 {
    // simlint::allow(no-such-rule, reason = "fixture: unknown rule id")
    x.unwrap()
}

fn stale_allow() -> u64 {
    // simlint::allow(wall-clock, reason = "fixture: nothing on the next line to suppress")
    42
}
