// Fixture: panic-hygiene and range-index. Never compiled.

fn hot_path(x: Option<u64>, v: &[u8], n: usize) -> u64 {
    let a = x.unwrap();
    let b = x.expect("present");
    if n == 0 {
        panic!("empty");
    }
    if n > v.len() {
        unreachable!("bounds");
    }
    let _head = &v[..n];
    let _tail = &v[n..];
    let _mid = &v[1..n];
    todo!()
}

fn fine(x: Option<u64>, v: &[u8]) -> u64 {
    // None of these are findings: checked alternatives and debug_assert.
    debug_assert!(!v.is_empty(), "caller guarantees non-empty");
    let _slice = v.get(..2);
    let first = v.first().copied().unwrap_or(0);
    let arr: [u8; 2] = [1, 2];
    let _elem = arr[0]; // plain indexing is allowed; only ranges are flagged
    x.unwrap_or(first as u64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u64> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
