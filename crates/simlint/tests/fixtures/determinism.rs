// Fixture: determinism rules (hash-container, wall-clock, thread-id,
// rng-discipline). Never compiled — linted by golden_fixtures.rs.
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Instant, SystemTime};

struct State {
    flows: HashMap<u64, u64>,
    seen: HashSet<u64>,
}

fn bad_clock() -> f64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_secs_f64()
}

fn bad_identity() -> u64 {
    let _hasher_seed = std::collections::hash_map::RandomState::new();
    std::thread::current().id();
    0
}

fn bad_rng(seed: u64) -> u64 {
    let mut rng = SimRng::new(seed);
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may fire.
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = std::time::Instant::now();
        let _rng = SimRng::new(7);
        assert!(m.is_empty());
    }
}
