//! Golden fixture tests: each `fixtures/<name>.rs` is linted with every
//! rule enabled and the human-rendered report (suppressed findings
//! included) is byte-compared against `fixtures/<name>.expected`.
//!
//! To refresh after an intentional rule change:
//! `UPDATE_EXPECTED=1 cargo test -p simlint --test golden_fixtures`
//! then review the diff like any other golden artifact.

use simlint::config::Config;
use simlint::diag::Report;
use simlint::rules::{lint_file, FileInput};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint one fixture as if it were hot-path, non-test code in a crate
/// where every rule applies (the default config constrains nothing).
fn lint_fixture(name: &str) -> Report {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    let input = FileInput {
        rel_path: &format!("fixtures/{name}"),
        crate_name: "fixture",
        is_test_file: false,
        src: &src,
    };
    let mut report = Report::default();
    lint_file(&input, &Config::default(), &mut report.diags);
    report.files_scanned = 1;
    report.sort();
    report
}

fn check_golden(name: &str) {
    let rendered = lint_fixture(name).render_human(true);
    let expected_path = fixtures_dir().join(name.replace(".rs", ".expected"));
    if std::env::var_os("UPDATE_EXPECTED").is_some() {
        std::fs::write(&expected_path, &rendered).expect("writing expected file");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}\n(run with UPDATE_EXPECTED=1 to create it)\nrendered:\n{rendered}",
            expected_path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "fixture {name} diagnostics drifted from golden file {}",
        expected_path.display()
    );
}

//= DESIGN.md#inv-hash-container
//= DESIGN.md#inv-wall-clock
//# Simulation state must be a pure function of config + seed.
//= DESIGN.md#inv-thread-id
//= DESIGN.md#inv-rng-discipline
#[test]
fn determinism_fixture() {
    check_golden("determinism.rs");
}

//= DESIGN.md#inv-panic-hygiene
//= DESIGN.md#inv-range-index
#[test]
fn panic_fixture() {
    check_golden("panic.rs");
}

//= DESIGN.md#inv-raw-write
#[test]
fn durability_fixture() {
    check_golden("durability.rs");
}

//= DESIGN.md#inv-float-unordered-acc
#[test]
fn float_fixture() {
    check_golden("float.rs");
}

#[test]
fn suppress_fixture() {
    check_golden("suppress.rs");
}

#[test]
fn strings_comments_fixture() {
    check_golden("strings_comments.rs");
}

//= DESIGN.md#inv-suppression
//= DESIGN.md#inv-unused-suppression
#[test]
fn suppressions_do_not_gate_but_malformed_ones_do() {
    let report = lint_fixture("suppress.rs");
    // Well-formed allows: suppressed, not gating.
    assert!(report.count_suppressed() >= 4, "{report:?}");
    // Missing reason + unknown rule produce gating `suppression` errors,
    // and the unwraps they failed to cover stay gating too.
    let gating: Vec<_> = report.gating().collect();
    assert!(
        gating.iter().filter(|d| d.rule == "suppression").count() >= 2,
        "{gating:?}"
    );
    assert!(
        gating.iter().filter(|d| d.rule == "panic-hygiene").count() >= 2,
        "{gating:?}"
    );
    // The dangling allow is reported stale.
    assert!(
        report.diags.iter().any(|d| d.rule == "unused-suppression"),
        "{report:?}"
    );
}

#[test]
fn strings_and_comments_hide_everything_but_the_real_finding() {
    let report = lint_fixture("strings_comments.rs");
    let gating: Vec<_> = report.gating().collect();
    assert_eq!(gating.len(), 1, "{gating:?}");
    assert_eq!(gating[0].rule, "panic-hygiene");
    assert_eq!(gating[0].line, 18);
}
