//! `--json` schema round-trip and end-to-end CLI tests.
//!
//! The CLI tests build a scratch "workspace" (a temp dir with a
//! `simlint.toml` and a seeded-bad crate), run the real binary against
//! it, and check diagnostics and exit codes — the acceptance drill for
//! "seeding a known-bad pattern produces the expected diagnostic".

use simlint::config::Config;
use simlint::diag::{parse_json, Json, Report};
use simlint::rules::{lint_file, FileInput};
use std::path::{Path, PathBuf};
use std::process::Command;

fn lint_snippet(src: &str) -> Report {
    let input = FileInput {
        rel_path: "crates/netsim/src/hot.rs",
        crate_name: "netsim",
        is_test_file: false,
        src,
    };
    let mut report = Report::default();
    lint_file(&input, &Config::default(), &mut report.diags);
    report.files_scanned = 1;
    report.sort();
    report
}

#[test]
fn json_schema_round_trip() {
    let report = lint_snippet(
        "// simlint::allow(wall-clock, reason = \"watchdog, with \\\"quotes\\\"\")\n\
         fn f() { let _ = Instant::now(); }\n\
         fn g(m: HashMap<u32, f64>) -> f64 { m.values().sum() }\n",
    );
    let text = report.render_json();
    let parsed = parse_json(&text).expect("simlint must emit valid JSON");

    // Schema fields.
    assert_eq!(parsed.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        parsed.get("files_scanned").and_then(Json::as_num),
        Some(1.0)
    );
    let summary = parsed.get("summary").expect("summary object");
    assert_eq!(
        summary.get("errors").and_then(Json::as_num),
        Some(report.count_gating() as f64)
    );
    assert_eq!(
        summary.get("suppressed").and_then(Json::as_num),
        Some(report.count_suppressed() as f64)
    );
    let findings = parsed.get("findings").and_then(Json::as_arr).unwrap();
    assert_eq!(findings.len(), report.diags.len());

    // Every finding round-trips field-for-field, in order.
    for (f, d) in findings.iter().zip(&report.diags) {
        assert_eq!(f.get("rule").and_then(Json::as_str), Some(d.rule));
        assert_eq!(
            f.get("severity").and_then(Json::as_str),
            Some(d.severity.as_str())
        );
        assert_eq!(f.get("path").and_then(Json::as_str), Some(d.path.as_str()));
        assert_eq!(f.get("line").and_then(Json::as_num), Some(d.line as f64));
        assert_eq!(f.get("col").and_then(Json::as_num), Some(d.col as f64));
        assert_eq!(
            f.get("message").and_then(Json::as_str),
            Some(d.message.as_str())
        );
        match &d.suppressed {
            Some(reason) => {
                assert_eq!(f.get("suppressed"), Some(&Json::Bool(true)));
                assert_eq!(
                    f.get("reason").and_then(Json::as_str),
                    Some(reason.as_str())
                );
            }
            None => {
                assert_eq!(f.get("suppressed"), Some(&Json::Bool(false)));
                assert_eq!(f.get("reason"), Some(&Json::Null));
            }
        }
    }
}

/// A scratch workspace under the target tmp dir, cleaned up on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("simlint-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/badcrate/src")).expect("mkdir scratch");
        Scratch { root }
    }

    fn write(&self, rel: &str, body: &str) {
        std::fs::write(self.root.join(rel), body).expect("write scratch file");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn run_simlint(root: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("running simlint binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const SCRATCH_CONFIG: &str = "\
version = 1
skip_dirs = [\"target\"]
[rules.hash-container]
crates = [\"badcrate\"]
[rules.panic-hygiene]
crates = [\"badcrate\"]
";

#[test]
fn seeded_bad_pattern_is_caught_end_to_end() {
    let scratch = Scratch::new("bad");
    scratch.write("simlint.toml", SCRATCH_CONFIG);
    scratch.write(
        "crates/badcrate/src/lib.rs",
        "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let (code, stdout, stderr) = run_simlint(&scratch.root, &[]);
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("crates/badcrate/src/lib.rs:1:23: error[hash-container]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/badcrate/src/lib.rs:3:7: error[panic-hygiene]"),
        "{stdout}"
    );

    // JSON mode agrees.
    let (code, stdout, _) = run_simlint(&scratch.root, &["--json"]);
    assert_eq!(code, 1);
    let parsed = parse_json(stdout.trim()).expect("valid JSON on stdout");
    assert_eq!(
        parsed
            .get("summary")
            .and_then(|s| s.get("errors"))
            .and_then(Json::as_num),
        Some(2.0)
    );
}

#[test]
fn clean_and_suppressed_code_exits_zero() {
    let scratch = Scratch::new("clean");
    scratch.write("simlint.toml", SCRATCH_CONFIG);
    scratch.write(
        "crates/badcrate/src/lib.rs",
        "use std::collections::BTreeMap;\n\
         fn f(x: Option<u32>) -> u32 {\n\
             // simlint::allow(panic-hygiene, reason = \"boot-time config error\")\n\
             x.unwrap()\n\
         }\n\
         fn g() -> BTreeMap<u32, u32> {\n\
             BTreeMap::new()\n\
         }\n",
    );
    let (code, stdout, stderr) = run_simlint(&scratch.root, &[]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("1 suppressed"), "{stdout}");
}

const SCRATCH_DESIGN: &str = "\
# Design

## Rules

| rule | protected invariant |
|---|---|
| `no-frob` | frobs are forbidden |
";

#[test]
fn compliance_end_to_end_json_round_trip() {
    let scratch = Scratch::new("compliance");
    scratch.write("simlint.toml", SCRATCH_CONFIG);
    scratch.write("DESIGN.md", SCRATCH_DESIGN);
    scratch.write(
        "crates/badcrate/src/lib.rs",
        "//= DESIGN.md#rules\nfn covered() {}\n\
         #[cfg(test)]\nmod tests {\n    //= DESIGN.md#inv-no-frob\n    #[test]\n    fn enforces() {}\n}\n",
    );
    let (code, stdout, stderr) = run_simlint(&scratch.root, &["compliance"]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("No violations"), "{stdout}");

    let (code, stdout, _) = run_simlint(&scratch.root, &["compliance", "--json"]);
    assert_eq!(code, 0);
    let parsed = parse_json(stdout.trim()).expect("valid compliance JSON");
    assert_eq!(parsed.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
    let regs = parsed.get("registries").and_then(Json::as_arr).unwrap();
    assert_eq!(
        regs[0].get("name").and_then(Json::as_str),
        Some("DESIGN.md")
    );
    let anchors = regs[0].get("anchors").and_then(Json::as_arr).unwrap();
    let inv = anchors
        .iter()
        .find(|a| a.get("anchor").and_then(Json::as_str) == Some("inv-no-frob"))
        .expect("rule-table anchor present");
    assert_eq!(inv.get("required"), Some(&Json::Bool(true)));
    assert_eq!(inv.get("test_citations").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        parsed
            .get("violations")
            .and_then(Json::as_arr)
            .map(|v| v.len()),
        Some(0)
    );
}

#[test]
fn compliance_stale_anchor_and_uncovered_invariant_gate() {
    let scratch = Scratch::new("stale");
    scratch.write("simlint.toml", SCRATCH_CONFIG);
    scratch.write("DESIGN.md", SCRATCH_DESIGN);
    // Cites an anchor that does not exist, and never cites inv-no-frob.
    scratch.write(
        "crates/badcrate/src/lib.rs",
        "//= DESIGN.md#renamed-away\nfn f() {}\n",
    );
    let (code, stdout, _) = run_simlint(&scratch.root, &["compliance"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("stale-anchor"), "{stdout}");
    assert!(stdout.contains("renamed-away"), "{stdout}");
    assert!(stdout.contains("uncovered-invariant"), "{stdout}");
    assert!(stdout.contains("inv-no-frob"), "{stdout}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let scratch = Scratch::new("usage");
    scratch.write("simlint.toml", SCRATCH_CONFIG);
    let (code, _, stderr) = run_simlint(&scratch.root, &["--frobnicate"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown flag"), "{stderr}");
}
