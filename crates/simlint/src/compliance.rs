//! `simlint compliance` — the spec/invariant citation tracker.
//!
//! Tests (and implementation sites) cite the documented invariant or
//! spec clause they enforce with structured comments, the s2n-quic
//! idiom adapted to this repo:
//!
//! ```text
//! //= DESIGN.md#inv-wall-clock
//! //# Simulation state must be a pure function of config + seed.
//! #[test]
//! fn golden_fingerprint_is_stable() { … }
//! ```
//!
//! * `//= <registry>#<anchor>` — a citation. `<registry>` is
//!   `DESIGN.md` or the stem of a file under `specs/` (e.g.
//!   `rfc9002` for `specs/rfc9002.md`).
//! * `//# …` — optional quote lines reproducing the cited text; they
//!   must directly follow a `//=` (or another `//#`) line.
//!
//! Anchors come from three places: slugified markdown headings,
//! explicit `<!-- anchor: name -->` comments, and — for `DESIGN.md` —
//! one `inv-<rule-id>` anchor per row of the rule→invariant table.
//! Every anchor named `inv-*` is **required**: it must be cited by at
//! least one *test* (a `tests/` file or a `#[cfg(test)]` region).
//! Citing an anchor that does not exist (stale after a heading rename)
//! is an error, as is a dangling `//#` quote. The report renders as a
//! markdown table or `--json` (schema version 1); any violation makes
//! the exit code nonzero, which `verify.sh --lint` gates on.

use crate::lexer::lex;
use crate::rules::test_region_mask;
use crate::LoadedFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// JSON schema version of `--json` output.
pub const SCHEMA_VERSION: u32 = 1;

/// Per-anchor coverage.
#[derive(Clone, Debug, Default)]
pub struct AnchorStat {
    /// Must be cited by ≥1 test (anchors named `inv-*`).
    pub required: bool,
    pub test_citations: u32,
    pub impl_citations: u32,
    /// `path:line` of every citation, sorted.
    pub sites: Vec<String>,
}

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// `stale-anchor`, `unknown-registry`, `uncovered-invariant`,
    /// `malformed-citation`, or `dangling-quote`.
    pub kind: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// The full compliance report.
#[derive(Clone, Debug, Default)]
pub struct ComplianceReport {
    /// registry name → anchor → coverage, both levels sorted.
    pub registries: BTreeMap<String, BTreeMap<String, AnchorStat>>,
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl ComplianceReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Markdown rendering: one table per registry plus a violations list.
    pub fn render_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# Compliance report\n");
        for (reg, anchors) in &self.registries {
            let cited: usize = anchors
                .values()
                .filter(|a| a.test_citations + a.impl_citations > 0)
                .count();
            let _ = writeln!(s, "## {reg} — {cited}/{} anchors cited\n", anchors.len());
            let _ = writeln!(
                s,
                "| anchor | required | test citations | impl references |"
            );
            let _ = writeln!(s, "|---|---|---|---|");
            for (name, a) in anchors {
                // Uncited optional anchors stay out of the table; the
                // headline count already says how many exist.
                if !a.required && a.test_citations + a.impl_citations == 0 {
                    continue;
                }
                let _ = writeln!(
                    s,
                    "| `{name}` | {} | {} | {} |",
                    if a.required { "yes" } else { "" },
                    a.test_citations,
                    a.impl_citations
                );
            }
            s.push('\n');
        }
        if self.violations.is_empty() {
            let _ = writeln!(s, "No violations.");
        } else {
            let _ = writeln!(s, "## Violations\n");
            for v in &self.violations {
                let _ = writeln!(s, "- **{}** {}:{}: {}", v.kind, v.path, v.line, v.message);
            }
        }
        s
    }

    /// Machine rendering, schema v1.
    pub fn render_json(&self) -> String {
        use crate::diag::json_str;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"version\":{SCHEMA_VERSION},\"ok\":{},\"files_scanned\":{},\"registries\":[",
            self.ok(),
            self.files_scanned
        );
        for (ri, (reg, anchors)) in self.registries.iter().enumerate() {
            if ri > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"name\":{},\"anchors\":[", json_str(reg));
            for (ai, (name, a)) in anchors.iter().enumerate() {
                if ai > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"anchor\":{},\"required\":{},\"test_citations\":{},\"impl_citations\":{},\"sites\":[",
                    json_str(name),
                    a.required,
                    a.test_citations,
                    a.impl_citations
                );
                for (si, site) in a.sites.iter().enumerate() {
                    if si > 0 {
                        s.push(',');
                    }
                    s.push_str(&json_str(site));
                }
                s.push_str("]}");
            }
            s.push_str("]}");
        }
        s.push_str("],\"violations\":[");
        for (vi, v) in self.violations.iter().enumerate() {
            if vi > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"kind\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(v.kind),
                json_str(&v.path),
                v.line,
                json_str(&v.message)
            );
        }
        s.push_str("]}");
        s
    }
}

/// GitHub-style slug: lowercase, alnum runs joined by single dashes.
pub fn slugify(heading: &str) -> String {
    let mut out = String::new();
    let mut dash = false;
    for c in heading.trim().chars() {
        if c.is_ascii_alphanumeric() {
            if dash && !out.is_empty() {
                out.push('-');
            }
            dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            dash = true;
        }
    }
    out
}

/// Anchors of one markdown registry: heading slugs, explicit
/// `<!-- anchor: name -->` comments, and (with `rule_table`) an
/// `inv-<rule-id>` per ``| `id` | …``-shaped table row.
pub fn markdown_anchors(text: &str, rule_table: bool) -> BTreeMap<String, AnchorStat> {
    let mut out: BTreeMap<String, AnchorStat> = BTreeMap::new();
    let mut add = |name: String| {
        let required = name.starts_with("inv-");
        out.entry(name).or_default().required |= required;
    };
    let mut in_code_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_code_fence = !in_code_fence;
            continue;
        }
        if in_code_fence {
            continue;
        }
        if let Some(h) = trimmed.strip_prefix('#') {
            let h = h.trim_start_matches('#');
            let slug = slugify(h);
            if !slug.is_empty() {
                add(slug);
            }
        }
        let mut rest = line;
        while let Some(at) = rest.find("<!-- anchor:") {
            let tail = &rest[at + "<!-- anchor:".len()..];
            if let Some(end) = tail.find("-->") {
                let name = tail[..end].trim();
                if !name.is_empty() {
                    add(name.to_string());
                }
                rest = &tail[end..];
            } else {
                break;
            }
        }
        if rule_table {
            // `| `rule-id` | invariant text |` rows. The first cell
            // must be exactly one code span — prose after the span
            // (`| `stress` CPU load generator |`) is a description
            // table, not an invariant registry.
            if let Some(body) = trimmed.strip_prefix("| `") {
                if let Some(end) = body.find('`') {
                    let id = &body[..end];
                    let cell_closed = body[end + 1..].trim_start().starts_with('|');
                    if !id.is_empty() && !id.contains(' ') && cell_closed {
                        add(format!("inv-{id}"));
                    }
                }
            }
        }
    }
    out
}

/// One parsed citation site.
struct Citation {
    path: String,
    line: u32,
    registry: String,
    anchor: String,
    is_test: bool,
}

/// Scan one source file for `//=` citations and `//#` quotes.
fn scan_file(f: &LoadedFile, citations: &mut Vec<Citation>, violations: &mut Vec<Violation>) {
    let lexed = lex(&f.src);
    let mask = test_region_mask(&lexed.tokens);
    let in_test_at = |line: u32| -> bool {
        if f.is_test_file {
            return true;
        }
        match lexed.tokens.iter().position(|t| t.line >= line) {
            Some(idx) => mask.get(idx).copied().unwrap_or(false),
            // Citation after the last token: attribute to the last
            // region (a trailing comment block at end of a test mod).
            None => mask.last().copied().unwrap_or(false),
        }
    };
    let mut prev_citing_line: Option<u32> = None;
    for c in &lexed.comments {
        if let Some(target) = c.text.strip_prefix("//=") {
            let target = target.trim();
            match target.split_once('#') {
                Some((reg, anchor)) if !reg.is_empty() && !anchor.is_empty() => {
                    citations.push(Citation {
                        path: f.rel_path.clone(),
                        line: c.line,
                        registry: reg.trim().to_string(),
                        anchor: anchor.trim().to_string(),
                        is_test: in_test_at(c.line),
                    });
                }
                _ => violations.push(Violation {
                    kind: "malformed-citation",
                    path: f.rel_path.clone(),
                    line: c.line,
                    message: format!("expected `//= <registry>#<anchor>`, got `//= {target}`"),
                }),
            }
            prev_citing_line = Some(c.line);
        } else if c.text.starts_with("//#") {
            if prev_citing_line != Some(c.line.saturating_sub(1)) {
                violations.push(Violation {
                    kind: "dangling-quote",
                    path: f.rel_path.clone(),
                    line: c.line,
                    message: "`//#` quote lines must directly follow a `//=` citation".into(),
                });
            }
            prev_citing_line = Some(c.line);
        } else {
            prev_citing_line = None;
        }
    }
}

/// Build the report from in-memory inputs. `specs` pairs registry name
/// (file stem) with markdown text.
pub fn build_report(
    design_text: &str,
    specs: &[(String, String)],
    files: &[LoadedFile],
) -> ComplianceReport {
    let mut report = ComplianceReport {
        files_scanned: files.len(),
        ..ComplianceReport::default()
    };
    report
        .registries
        .insert("DESIGN.md".to_string(), markdown_anchors(design_text, true));
    for (name, text) in specs {
        report
            .registries
            .insert(name.clone(), markdown_anchors(text, false));
    }

    let mut citations = Vec::new();
    let mut sorted: Vec<&LoadedFile> = files.iter().collect();
    sorted.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    for f in &sorted {
        scan_file(f, &mut citations, &mut report.violations);
    }

    for c in &citations {
        let Some(anchors) = report.registries.get_mut(&c.registry) else {
            report.violations.push(Violation {
                kind: "unknown-registry",
                path: c.path.clone(),
                line: c.line,
                message: format!(
                    "`{}` is not a citation registry (DESIGN.md or a specs/*.md stem)",
                    c.registry
                ),
            });
            continue;
        };
        let Some(stat) = anchors.get_mut(&c.anchor) else {
            report.violations.push(Violation {
                kind: "stale-anchor",
                path: c.path.clone(),
                line: c.line,
                message: format!(
                    "anchor `{}#{}` does not exist (renamed heading or removed invariant?)",
                    c.registry, c.anchor
                ),
            });
            continue;
        };
        if c.is_test {
            stat.test_citations += 1;
        } else {
            stat.impl_citations += 1;
        }
        stat.sites.push(format!("{}:{}", c.path, c.line));
    }

    for (reg, anchors) in &report.registries {
        for (name, stat) in anchors {
            if stat.required && stat.test_citations == 0 {
                report.violations.push(Violation {
                    kind: "uncovered-invariant",
                    path: reg.clone(),
                    line: 0,
                    message: format!(
                        "invariant `{reg}#{name}` has no enforcing test (cite it with `//= {reg}#{name}`)"
                    ),
                });
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (a.kind, &a.path, a.line).cmp(&(b.kind, &b.path, b.line)));
    report
}

/// Run against a workspace root: DESIGN.md + specs/*.md + every
/// lintable source file.
pub fn run(root: &Path, cfg: &crate::Config) -> Result<ComplianceReport, String> {
    let design_path = root.join("DESIGN.md");
    let design = std::fs::read_to_string(&design_path)
        .map_err(|e| format!("reading {}: {e}", design_path.display()))?;
    let mut specs = Vec::new();
    let specs_dir = root.join("specs");
    if specs_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&specs_dir)
            .map_err(|e| format!("reading {}: {e}", specs_dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        entries.sort();
        for p in entries {
            let stem = p
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_default();
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            specs.push((stem, text));
        }
    }
    let files = crate::load_workspace(root, cfg)?;
    Ok(build_report(&design, &specs, &files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lf(rel_path: &str, is_test_file: bool, src: &str) -> LoadedFile {
        LoadedFile {
            rel_path: rel_path.to_string(),
            crate_name: "x".to_string(),
            is_test_file,
            src: src.to_string(),
        }
    }

    const DESIGN: &str = "\
# Design
## Durability & recovery (`core::campaign`)
### Bit-identical resume
| rule | protected invariant |
|---|---|
| `wall-clock` | pure function of config |
<!-- anchor: inv-extra -->
";

    #[test]
    fn anchors_from_headings_table_and_explicit() {
        let a = markdown_anchors(DESIGN, true);
        assert!(a.contains_key("durability-recovery-core-campaign"), "{a:?}");
        assert!(a.contains_key("bit-identical-resume"));
        assert!(a["inv-wall-clock"].required);
        assert!(a["inv-extra"].required);
        assert!(!a["bit-identical-resume"].required);
    }

    #[test]
    fn covered_invariants_are_green() {
        let files = vec![lf(
            "crates/x/tests/t.rs",
            true,
            "//= DESIGN.md#inv-wall-clock\n//# pure function of config\nfn t() {}\n\
             //= DESIGN.md#inv-extra\nfn u() {}\n",
        )];
        let r = build_report(DESIGN, &[], &files);
        assert!(r.ok(), "{:?}", r.violations);
        let stat = &r.registries["DESIGN.md"]["inv-wall-clock"];
        assert_eq!(stat.test_citations, 1);
        assert_eq!(stat.sites, ["crates/x/tests/t.rs:1"]);
    }

    #[test]
    fn uncovered_and_stale_and_dangling() {
        let files = vec![lf(
            "crates/x/src/lib.rs",
            false,
            "//= DESIGN.md#no-such-anchor\nfn a() {}\n\n//# orphan quote\nfn b() {}\n",
        )];
        let r = build_report(DESIGN, &[], &files);
        let kinds: Vec<&str> = r.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"stale-anchor"), "{kinds:?}");
        assert!(kinds.contains(&"dangling-quote"));
        // Both inv anchors uncovered.
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == "uncovered-invariant")
                .count(),
            2
        );
    }

    #[test]
    fn impl_citation_does_not_satisfy_requirement() {
        let files = vec![lf(
            "crates/x/src/lib.rs",
            false,
            "//= DESIGN.md#inv-wall-clock\npub fn a() {}\n//= DESIGN.md#inv-extra\npub fn b() {}\n",
        )];
        let r = build_report(DESIGN, &[], &files);
        assert!(!r.ok());
        assert_eq!(
            r.registries["DESIGN.md"]["inv-wall-clock"].impl_citations,
            1
        );
        assert!(r.violations.iter().all(|v| v.kind == "uncovered-invariant"));
    }

    #[test]
    fn cfg_test_region_counts_as_test_citation() {
        let files = vec![lf(
            "crates/x/src/lib.rs",
            false,
            "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    //= DESIGN.md#inv-wall-clock\n    //= DESIGN.md#inv-extra\n    #[test]\n    fn t() {}\n}\n",
        )];
        let r = build_report(DESIGN, &[], &files);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(
            r.registries["DESIGN.md"]["inv-wall-clock"].test_citations,
            1
        );
    }

    #[test]
    fn spec_registry_citations() {
        let files = vec![lf(
            "crates/x/tests/t.rs",
            true,
            "//= rfc9002#pacing\nfn t() {}\n//= rfc9999#nope\nfn u() {}\n",
        )];
        let specs = vec![("rfc9002".to_string(), "## Pacing\n".to_string())];
        let r = build_report(DESIGN, &specs, &files);
        assert_eq!(r.registries["rfc9002"]["pacing"].test_citations, 1);
        assert!(r.violations.iter().any(|v| v.kind == "unknown-registry"));
    }

    #[test]
    fn json_shape_round_trips() {
        let files = vec![lf(
            "crates/x/tests/t.rs",
            true,
            "//= DESIGN.md#inv-wall-clock\n//= DESIGN.md#inv-extra\nfn t() {}\n",
        )];
        let r = build_report(DESIGN, &[], &files);
        let json = r.render_json();
        let parsed = crate::diag::parse_json(&json).expect("valid json");
        assert_eq!(
            parsed.get("version").and_then(|v| v.as_num()),
            Some(f64::from(SCHEMA_VERSION))
        );
        assert_eq!(parsed.get("ok").and_then(|v| v.as_bool()), Some(true));
    }
}
