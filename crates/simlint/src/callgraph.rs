//! Cross-file symbol table and call graph over [`crate::parse`] output.
//!
//! Resolution is deliberately name-based and over-approximate: a method
//! call `.tick()` edges to *every* workspace method named `tick` (the
//! trait-dispatch fallback — we cannot know the receiver type), and a
//! path call falls back to suffix matching so `greenenvy::fig1::run`
//! resolves even though the `greenenvy` lib lives in the `core` crate
//! directory. Over-approximation is the right failure mode for a taint
//! analysis: a spurious edge can at worst demand one reasoned
//! suppression; a missing edge hides a real nondeterminism leak.
//!
//! All containers are `BTreeMap`/`BTreeSet` and node ids are assigned
//! in sorted-qual order, so the graph — and everything derived from it —
//! is a pure function of the file *set*, independent of walk order.

use crate::parse::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function node in [`Graph::fns`].
pub type FnId = usize;

/// One resolved function node.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// `crate::module::Type::name` (see [`crate::parse::FnItem::qual`]).
    pub qual: String,
    pub name: String,
    pub crate_name: String,
    pub rel_path: String,
    pub line: u32,
    pub is_pub: bool,
    pub is_method: bool,
    pub in_test: bool,
}

/// One call edge kept with the *expanded* callee path (use-aliases and
/// `crate`/`self`/`super`/`Self` resolved) even when it resolves to no
/// workspace function — sink matching runs on the expanded path.
#[derive(Clone, Debug)]
pub struct Edge {
    pub caller: FnId,
    /// Workspace callees (empty for external calls like `Vec::push`).
    pub callees: Vec<FnId>,
    /// Expanded path segments as resolved against the caller's file.
    pub expanded: Vec<String>,
    pub method: bool,
    pub line: u32,
    pub int_arg: Option<String>,
}

#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Nodes in sorted-qual order (ids are stable across walk orders).
    pub fns: Vec<FnNode>,
    pub edges: Vec<Edge>,
    /// qual → ids (duplicate quals possible: `#[cfg]`-twinned fns,
    /// same-named methods of a type across files).
    pub by_qual: BTreeMap<String, Vec<FnId>>,
    /// method name → ids, the trait-dispatch fallback table.
    pub methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Watched-ident mentions per function, with lines.
    pub mentions: BTreeMap<FnId, Vec<(String, u32)>>,
}

impl Graph {
    /// Reverse adjacency: callee id → caller ids (deduplicated, sorted).
    pub fn reverse_edges(&self) -> BTreeMap<FnId, BTreeSet<FnId>> {
        let mut rev: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();
        for e in &self.edges {
            for c in &e.callees {
                rev.entry(*c).or_default().insert(e.caller);
            }
        }
        rev
    }
}

/// Build the workspace graph. `files` may arrive in any order.
pub fn build(files: &[ParsedFile]) -> Graph {
    // Sort file references by path so node ids never depend on the
    // caller's walk order.
    let mut sorted: Vec<&ParsedFile> = files.iter().collect();
    sorted.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    let mut g = Graph::default();
    // Pass 1: nodes. (fn_locs[i][j] = FnId of sorted[i].fns[j].)
    let mut fn_locs: Vec<Vec<FnId>> = Vec::with_capacity(sorted.len());
    for pf in &sorted {
        let mut ids = Vec::with_capacity(pf.fns.len());
        for f in &pf.fns {
            let id = g.fns.len();
            g.fns.push(FnNode {
                qual: f.qual.clone(),
                name: f.name.clone(),
                crate_name: pf.crate_name.clone(),
                rel_path: pf.rel_path.clone(),
                line: f.line,
                is_pub: f.is_pub,
                is_method: f.is_method,
                in_test: f.in_test,
            });
            g.by_qual.entry(f.qual.clone()).or_default().push(id);
            if f.is_method {
                g.methods_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(id);
            }
            ids.push(id);
        }
        fn_locs.push(ids);
    }

    // Pass 2: edges and mentions.
    for (fi, pf) in sorted.iter().enumerate() {
        for (fj, f) in pf.fns.iter().enumerate() {
            let caller = fn_locs[fi][fj];
            if !f.mentions.is_empty() {
                g.mentions.insert(
                    caller,
                    f.mentions
                        .iter()
                        .map(|m| (m.ident.clone(), m.line))
                        .collect(),
                );
            }
            for call in &f.calls {
                let (expanded, callees) = resolve(&g, pf, f.type_ctx.as_deref(), call);
                g.edges.push(Edge {
                    caller,
                    callees,
                    expanded,
                    method: call.method,
                    line: call.line,
                    int_arg: call.int_arg.clone(),
                });
            }
        }
    }
    g
}

/// Expand and resolve one call against its file context.
fn resolve(
    g: &Graph,
    pf: &ParsedFile,
    type_ctx: Option<&str>,
    call: &crate::parse::Call,
) -> (Vec<String>, Vec<FnId>) {
    if call.method {
        // Trait-dispatch fallback: all workspace methods of this name.
        let name = call.path[0].clone();
        let callees = g.methods_by_name.get(&name).cloned().unwrap_or_default();
        return (vec![name], callees);
    }

    // Expand the head segment: Self, crate/self/super, then use-aliases.
    let mut segs: Vec<String> = Vec::new();
    let mut rest: &[String] = &call.path;
    match call.path[0].as_str() {
        "Self" => {
            segs.push(pf.crate_name.clone());
            segs.extend(pf.module.iter().cloned());
            if let Some(ty) = type_ctx {
                segs.push(ty.to_string());
            }
            rest = &call.path[1..];
        }
        "crate" => {
            segs.push(pf.crate_name.clone());
            rest = &call.path[1..];
        }
        "self" => {
            segs.push(pf.crate_name.clone());
            segs.extend(pf.module.iter().cloned());
            rest = &call.path[1..];
        }
        "super" => {
            segs.push(pf.crate_name.clone());
            let mut m = pf.module.clone();
            while rest.first().map(String::as_str) == Some("super") {
                m.pop();
                rest = &rest[1..];
            }
            segs.extend(m);
        }
        head => {
            if let Some(abs) = pf.uses.get(head) {
                segs.extend(abs.iter().cloned());
                rest = &call.path[1..];
            }
        }
    }
    segs.extend(rest.iter().cloned());

    let mut callees: BTreeSet<FnId> = BTreeSet::new();
    let joined = segs.join("::");

    // Exact lookups: as-expanded, then relative to the caller's module,
    // then relative to the caller's crate root.
    let exact = |g: &Graph, q: &str, out: &mut BTreeSet<FnId>| {
        if let Some(ids) = g.by_qual.get(q) {
            out.extend(ids.iter().copied());
        }
    };
    exact(g, &joined, &mut callees);
    if callees.is_empty() {
        let mut m = vec![pf.crate_name.clone()];
        m.extend(pf.module.iter().cloned());
        m.extend(segs.iter().cloned());
        exact(g, &m.join("::"), &mut callees);
    }
    if callees.is_empty() {
        let mut m = vec![pf.crate_name.clone()];
        m.extend(segs.iter().cloned());
        exact(g, &m.join("::"), &mut callees);
    }

    // Suffix fallback for multi-segment paths only (a bare `helper()`
    // must not edge to every `helper` in the workspace): match any qual
    // ending in `::<joined>`, or with the head segment dropped — which
    // covers lib-name/dir-name mismatches (`greenenvy::…` vs `core/…`)
    // and associated-type paths.
    if callees.is_empty() && segs.len() >= 2 {
        let suffixes: Vec<String> = {
            let mut s = vec![format!("::{joined}")];
            if segs.len() >= 3 {
                s.push(format!("::{}", segs[1..].join("::")));
            }
            s
        };
        for (qual, ids) in &g.by_qual {
            if suffixes.iter().any(|s| qual.ends_with(s.as_str())) {
                callees.extend(ids.iter().copied());
            }
        }
    }

    (segs, callees.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::FileInput;

    fn pf(rel_path: &str, crate_name: &str, src: &str) -> ParsedFile {
        parse_file(
            &FileInput {
                rel_path,
                crate_name,
                is_test_file: false,
                src,
            },
            &[],
        )
    }

    fn edge_targets(g: &Graph, caller: &str) -> Vec<String> {
        let caller_ids: Vec<FnId> = g.by_qual.get(caller).cloned().unwrap_or_default();
        let mut out = Vec::new();
        for e in &g.edges {
            if caller_ids.contains(&e.caller) {
                for c in &e.callees {
                    out.push(g.fns[*c].qual.clone());
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn cross_crate_resolution_via_use() {
        let a = pf(
            "crates/a/src/lib.rs",
            "a",
            "use b::util::stamp;\npub fn go() { stamp(); }\n",
        );
        let b = pf("crates/b/src/util.rs", "b", "pub fn stamp() {}\n");
        let g = build(&[a, b]);
        assert_eq!(edge_targets(&g, "a::go"), ["b::util::stamp"]);
    }

    #[test]
    fn suffix_fallback_covers_lib_dir_mismatch() {
        // Lib name `greenenvy`, directory `core`: the call names the lib.
        let a = pf(
            "crates/a/src/lib.rs",
            "a",
            "pub fn go() { greenenvy::fig1::run(); }\n",
        );
        let core = pf("crates/core/src/fig1.rs", "core", "pub fn run() {}\n");
        let g = build(&[a, core]);
        assert_eq!(edge_targets(&g, "a::go"), ["core::fig1::run"]);
    }

    #[test]
    fn method_fallback_edges_to_all_methods() {
        let a = pf(
            "crates/a/src/lib.rs",
            "a",
            "struct X; impl X { pub fn tick(&self) {} }\npub fn go(x: X) { x.tick(); }\n",
        );
        let b = pf(
            "crates/b/src/lib.rs",
            "b",
            "struct Y; impl Y { pub fn tick(&self) {} }\n",
        );
        let g = build(&[a, b]);
        assert_eq!(edge_targets(&g, "a::go"), ["a::X::tick", "b::Y::tick"]);
    }

    #[test]
    fn bare_call_does_not_global_match() {
        let a = pf("crates/a/src/lib.rs", "a", "pub fn go() { helper(); }\n");
        let b = pf("crates/b/src/lib.rs", "b", "pub fn helper() {}\n");
        let g = build(&[a, b]);
        assert!(edge_targets(&g, "a::go").is_empty());
    }

    #[test]
    fn same_module_and_self_calls() {
        let a = pf(
            "crates/a/src/m.rs",
            "a",
            "pub fn go() { helper(); Self::also(); }\npub fn helper() {}\n\
             struct T; impl T { pub fn m(&self) { Self::assoc(); } pub fn assoc() {} }\n",
        );
        let g = build(&[a]);
        assert_eq!(edge_targets(&g, "a::m::go"), ["a::m::helper"]);
        assert_eq!(edge_targets(&g, "a::m::T::m"), ["a::m::T::assoc"]);
    }

    #[test]
    fn node_ids_independent_of_file_order() {
        let mk = || {
            vec![
                pf(
                    "crates/a/src/lib.rs",
                    "a",
                    "pub fn one() { two(); } pub fn two() {}",
                ),
                pf("crates/b/src/lib.rs", "b", "pub fn three() {}"),
            ]
        };
        let fwd = build(&mk());
        let mut files = mk();
        files.reverse();
        let rev = build(&files);
        let quals = |g: &Graph| g.fns.iter().map(|f| f.qual.clone()).collect::<Vec<_>>();
        assert_eq!(quals(&fwd), quals(&rev));
        assert_eq!(fwd.edges.len(), rev.edges.len());
    }
}
