//! `simlint` — workspace-native static analysis for the Green-With-Envy
//! reproduction.
//!
//! The repo's headline results rest on bit-reproducible simulation and
//! crash-durable artifacts. The golden fingerprint tests prove those
//! properties for the paths they exercise; `simlint` keeps future PRs
//! from silently reintroducing the classic regressions (a `HashMap`
//! iteration, a wall-clock read, an ad-hoc RNG stream, a raw
//! `fs::write`) anywhere in the workspace. Two layers, no rustc
//! plumbing, no external dependencies:
//!
//! * **token rules** — patterns over a comment/string-aware lexer,
//!   scoped per crate/path via `simlint.toml`;
//! * **semantic rules** — a lightweight item/call parser feeding a
//!   cross-crate call graph: nondeterminism *taint* (a sink anywhere is
//!   an error on every public sim-surface function that transitively
//!   reaches it, full call path printed) plus registry rules
//!   (exit codes, schema-version bumps via `schema.lock`, metric
//!   names).
//!
//! A third mode, `simlint compliance`, cross-checks `//= DESIGN.md#…` /
//! `//= rfc9002#…` citations in source against the documented invariant
//! and spec anchor registries (see [`compliance`]).
//!
//! Findings can be suppressed inline where the flagged construct is
//! genuinely intentional, but only with a reason:
//!
//! ```text
//! // simlint::allow(wall-clock, reason = "watchdog deadline is wall time by design")
//! ```
//!
//! See `simlint.toml` at the repo root for the rule→crate scoping and
//! DESIGN.md ("Static analysis & enforced invariants") for the mapping
//! from each rule to the design invariant it protects.

pub mod callgraph;
pub mod compliance;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod registry;
pub mod rules;
pub mod semantic;
pub mod taint;
pub mod walk;

pub use config::Config;
pub use diag::{Diagnostic, Report, Severity};

use rules::Suppression;
use std::collections::BTreeMap;
use std::path::Path;

/// Name of the config file looked up at the workspace root.
pub const CONFIG_FILE: &str = "simlint.toml";

/// One source file read into memory, with its workspace classification.
pub struct LoadedFile {
    pub rel_path: String,
    pub crate_name: String,
    pub is_test_file: bool,
    pub src: String,
}

/// Walk `root` and read every lintable file.
pub fn load_workspace(root: &Path, cfg: &Config) -> Result<Vec<LoadedFile>, String> {
    let files = walk::collect(root, cfg).map_err(|e| format!("walking {}: {e}", root.display()))?;
    files
        .into_iter()
        .map(|f| {
            let src = std::fs::read_to_string(&f.abs_path)
                .map_err(|e| format!("reading {}: {e}", f.abs_path.display()))?;
            Ok(LoadedFile {
                rel_path: f.rel_path,
                crate_name: f.crate_name,
                is_test_file: f.is_test_file,
                src,
            })
        })
        .collect()
}

/// Token pass over loaded files. Appends findings and returns each
/// file's suppressions (usage marked for token rules only) for the
/// semantic pass to extend.
pub fn token_pass(
    files: &[LoadedFile],
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) -> BTreeMap<String, Vec<Suppression>> {
    let mut sups = BTreeMap::new();
    for f in files {
        let input = rules::FileInput {
            rel_path: &f.rel_path,
            crate_name: &f.crate_name,
            is_test_file: f.is_test_file,
            src: &f.src,
        };
        let s = rules::lint_file_deferred(&input, cfg, out);
        if !s.is_empty() {
            sups.insert(f.rel_path.clone(), s);
        }
    }
    sups
}

/// Lint already-loaded files: token pass, semantic pass, then
/// unused-suppression settlement. The result is a pure function of the
/// file *set* — callers may pass `files` in any order (pinned by the
/// walk-order proptest).
pub fn lint_loaded(files: &[LoadedFile], cfg: &Config, lock_text: Option<&str>) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    let mut sups = token_pass(files, cfg, &mut report.diags);

    let analysis = semantic::analyze(files);
    semantic::run(&analysis, cfg, lock_text, &mut sups, &mut report.diags);

    for (path, file_sups) in &sups {
        rules::report_unused(file_sups, path, false, &mut report.diags);
    }
    report.sort();
    report
}

/// Lint every source file under `root` using `cfg`: token pass,
/// semantic pass, then unused-suppression settlement.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = load_workspace(root, cfg)?;
    let lock_text = std::fs::read_to_string(root.join(registry::SCHEMA_LOCK)).ok();
    Ok(lint_loaded(&files, cfg, lock_text.as_deref()))
}

/// Load `simlint.toml` from `root` and lint the workspace with it.
pub fn lint_workspace_with_config_file(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("reading {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&text, &cfg_path.to_string_lossy())?;
    lint_workspace(root, &cfg)
}

/// Token pass only — no parse, call graph, taint, or registry rules.
/// The cheap per-file layer, measured separately from the full run in
/// the perf baseline. Suppressions that exist for semantic rules are
/// not reported unused here (the pass that would use them didn't run).
pub fn lint_workspace_tokens_with_config_file(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("reading {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&text, &cfg_path.to_string_lossy())?;
    let files = load_workspace(root, &cfg)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let sups = token_pass(&files, &cfg, &mut report.diags);
    for (path, file_sups) in &sups {
        rules::report_unused(file_sups, path, true, &mut report.diags);
    }
    report.sort();
    Ok(report)
}
