//! `simlint` — workspace-native static analysis for the Green-With-Envy
//! reproduction.
//!
//! The repo's headline results rest on bit-reproducible simulation and
//! crash-durable artifacts. The golden fingerprint tests prove those
//! properties for the paths they exercise; `simlint` keeps future PRs
//! from silently reintroducing the classic regressions (a `HashMap`
//! iteration, a wall-clock read, an ad-hoc RNG stream, a raw
//! `fs::write`) anywhere in the workspace. Rules are token-stream
//! patterns over a comment/string-aware lexer — no rustc plumbing, no
//! external dependencies, fast enough to run on every verify.
//!
//! Findings can be suppressed inline where the flagged construct is
//! genuinely intentional, but only with a reason:
//!
//! ```text
//! // simlint::allow(wall-clock, reason = "watchdog deadline is wall time by design")
//! ```
//!
//! See `simlint.toml` at the repo root for the rule→crate scoping and
//! DESIGN.md ("Static analysis & enforced invariants") for the mapping
//! from each rule to the design invariant it protects.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use diag::{Diagnostic, Report, Severity};

use std::path::Path;

/// Name of the config file looked up at the workspace root.
pub const CONFIG_FILE: &str = "simlint.toml";

/// Lint every source file under `root` using `cfg`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = walk::collect(root, cfg).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = Report::default();
    for f in &files {
        let src = std::fs::read_to_string(&f.abs_path)
            .map_err(|e| format!("reading {}: {e}", f.abs_path.display()))?;
        let input = rules::FileInput {
            rel_path: &f.rel_path,
            crate_name: &f.crate_name,
            is_test_file: f.is_test_file,
            src: &src,
        };
        rules::lint_file(&input, cfg, &mut report.diags);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Load `simlint.toml` from `root` and lint the workspace with it.
pub fn lint_workspace_with_config_file(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("reading {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&text, &cfg_path.to_string_lossy())?;
    lint_workspace(root, &cfg)
}
