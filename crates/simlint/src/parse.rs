//! A lightweight recursive-descent *item and call* parser over the
//! token stream from [`crate::lexer`].
//!
//! This is deliberately not a Rust grammar. The semantic passes
//! (call-graph taint, registry rules) need exactly four things from a
//! source file: which functions it defines (with module/impl context
//! and visibility), which paths it imports, which calls each function
//! body makes, and where a short watch-list of identifiers is
//! mentioned. Everything else — expressions, types, patterns — is
//! skipped by brace matching. The parser never fails: like the lexer,
//! it degrades gracefully on code `rustc` would reject, because the
//! fixture corpus is exactly that.
//!
//! Positions where the parser is *conservative by design*:
//!
//! * nested `fn` items inside a body are not registered as symbols;
//!   their calls attribute to the enclosing function (taint still
//!   propagates, through the outer name);
//! * a tuple-struct construction `Foo(x)` is recorded as a call and
//!   simply fails to resolve (no function named `Foo`);
//! * macro invocations are not expanded; calls inside macro arguments
//!   are still visible as tokens and are recorded.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{test_region_mask, FileInput};
use std::collections::BTreeMap;

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Path segments as written (`["SystemTime", "now"]`,
    /// `["helper", "stamp"]`, `["stamp"]`). For method calls this is
    /// the single method name.
    pub path: Vec<String>,
    /// True for `.name(...)` receiver calls — resolved by the
    /// trait-method dispatch fallback (any known method of that name).
    pub method: bool,
    pub line: u32,
    /// First argument when it is a bare integer literal (fuel for
    /// `exit-code-registry`: `process::exit(4)` vs `process::exit(EXIT_X)`).
    pub int_arg: Option<String>,
}

/// A watched identifier mention (used for ident-shaped taint sinks
/// such as `HashMap` or `RandomState`, which appear in type position
/// as often as in call position).
#[derive(Clone, Debug)]
pub struct Mention {
    pub ident: String,
    pub line: u32,
}

/// A string literal passed as the first argument to one of the
/// metric-registration methods (`counter_add`/`gauge_set`/`observe`),
/// or bound to a `*_METRIC` const. Fuel for `metric-name-registry`.
#[derive(Clone, Debug)]
pub struct MetricLit {
    /// The literal content without quotes.
    pub name: String,
    pub line: u32,
    /// True when the registration sits in test code.
    pub in_test: bool,
}

/// One `fn` item with everything the call graph needs.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Fully qualified: `crate::module::Type::name` (impl/trait
    /// methods) or `crate::module::name` (free functions).
    pub qual: String,
    /// The bare function name.
    pub name: String,
    /// Enclosing impl/trait type name, if any.
    pub type_ctx: Option<String>,
    pub line: u32,
    /// Declared `pub` (any `pub(...)` restriction counts as pub; the
    /// taint surface cares about "callable from outside this module").
    pub is_pub: bool,
    /// Defined inside an `impl` or `trait` block.
    pub is_method: bool,
    /// Inside a `#[cfg(test)]`/`#[test]` region or a test file.
    pub in_test: bool,
    pub calls: Vec<Call>,
    pub mentions: Vec<Mention>,
}

/// Parse result for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    pub rel_path: String,
    pub crate_name: String,
    /// Module path derived from the file's location under `src/`
    /// (`campaign/journal.rs` → `["campaign", "journal"]`; inline
    /// `mod` blocks extend it further per item).
    pub module: Vec<String>,
    /// `use` aliases: local name → absolute path segments (leading
    /// `crate`/`self`/`super` already resolved against this file).
    pub uses: BTreeMap<String, Vec<String>>,
    pub fns: Vec<FnItem>,
    pub metric_lits: Vec<MetricLit>,
    /// Consts whose name contains `SCHEMA` with an integer value
    /// (fuel for `schema-version-bump`).
    pub schema_consts: Vec<(String, String)>,
    /// FNV-1a hash over the token shape of every struct/enum item in
    /// the file (fuel for `schema-version-bump`).
    pub shape_hash: u64,
}

/// Identifiers that can never start a call path.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "trait", "true", "type", "unsafe", "use",
    "where", "while", "yield",
];

const METRIC_METHODS: &[&str] = &["counter_add", "gauge_set", "observe"];

/// Parse one file. `watch` is the ident watch-list recorded into
/// [`FnItem::mentions`] (the ident-shaped taint sinks).
pub fn parse_file(input: &FileInput<'_>, watch: &[&str]) -> ParsedFile {
    let lexed = lex(input.src);
    let test_mask = test_region_mask(&lexed.tokens);
    let mut p = Parser {
        toks: &lexed.tokens,
        test_mask: &test_mask,
        input,
        watch,
        out: ParsedFile {
            rel_path: input.rel_path.to_string(),
            crate_name: input.crate_name.to_string(),
            module: module_path_of(input.rel_path),
            ..ParsedFile::default()
        },
        shape: Fnv::new(),
    };
    let end = p.toks.len();
    let module = p.out.module.clone();
    p.items(0, end, &module, None);
    p.out.shape_hash = p.shape.finish();
    p.out
}

/// Module path from the file's repo-relative location: the segments
/// between `src/` and the file name, plus the file stem (dropping
/// `lib`, `main`, and `mod`, which name their parent).
pub fn module_path_of(rel_path: &str) -> Vec<String> {
    let segs: Vec<&str> = rel_path.split('/').collect();
    let Some(src_at) = segs.iter().position(|s| *s == "src") else {
        // tests/, benches/, examples/, fixture roots: flat namespace
        // under the file stem.
        let stem = segs
            .last()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or_default();
        return if stem.is_empty() {
            Vec::new()
        } else {
            vec![stem.to_string()]
        };
    };
    let mut out: Vec<String> = segs[src_at + 1..].iter().map(|s| s.to_string()).collect();
    if let Some(file) = out.pop() {
        match file.strip_suffix(".rs") {
            Some("lib") | Some("main") | Some("mod") | None => {}
            Some(stem) => out.push(stem.to_string()),
        }
    }
    out
}

struct Parser<'a> {
    toks: &'a [Tok<'a>],
    test_mask: &'a [bool],
    input: &'a FileInput<'a>,
    watch: &'a [&'a str],
    out: ParsedFile,
    shape: Fnv,
}

impl<'a> Parser<'a> {
    fn in_test(&self, i: usize) -> bool {
        self.input.is_test_file || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Scan items in `[start, end)` with the given module path and
    /// impl/trait type context (`(type name, is trait surface)` — trait
    /// decls and trait impls expose their methods without a `pub`
    /// keyword, so the bool marks them implicitly public).
    fn items(
        &mut self,
        start: usize,
        end: usize,
        module: &[String],
        type_ctx: Option<(&str, bool)>,
    ) {
        let mut i = start;
        let mut vis_pub = false;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('#') && self.peek_punct(i + 1, '[') {
                i = self.skip_attr(i + 1) + 1;
                continue;
            }
            if t.kind != TokKind::Ident {
                // Visibility only survives across `(crate)`-style
                // restrictions, which follow `pub` immediately.
                if !(t.is_punct('(') || t.is_punct(')')) {
                    vis_pub = vis_pub && t.is_punct('(');
                }
                i += 1;
                continue;
            }
            match t.text {
                "pub" => {
                    vis_pub = true;
                    i += 1;
                    // Step over a `pub(crate)` / `pub(in path)` group.
                    if self.peek_punct(i, '(') {
                        i = self.matching(i, '(', ')') + 1;
                    }
                }
                "use" => {
                    i = self.parse_use(i + 1, module);
                    vis_pub = false;
                }
                "mod" => {
                    // `mod name { ... }` recurses; `mod name;` skips.
                    let name = self.ident_at(i + 1);
                    let mut j = i + 2;
                    while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
                        j += 1;
                    }
                    if j < end && self.toks[j].is_punct('{') {
                        let close = self.matching(j, '{', '}');
                        if let Some(name) = name {
                            let mut m = module.to_vec();
                            m.push(name);
                            self.items(j + 1, close.min(end), &m, type_ctx);
                        }
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                    vis_pub = false;
                }
                "impl" | "trait" => {
                    i = self.parse_impl_or_trait(i, end, module, t.text == "trait");
                    vis_pub = false;
                }
                "fn" => {
                    i = self.parse_fn(i, end, module, type_ctx, vis_pub);
                    vis_pub = false;
                }
                "struct" | "enum" | "union" => {
                    i = self.parse_type_item(i, end);
                    vis_pub = false;
                }
                "const" | "static" => {
                    i = self.parse_const(i, end);
                    vis_pub = false;
                }
                _ => {
                    i += 1;
                    vis_pub = false;
                }
            }
        }
    }

    fn peek_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident_at(&self, i: usize) -> Option<String> {
        self.toks.get(i).and_then(|t| {
            (t.kind == TokKind::Ident).then(|| t.text.trim_start_matches("r#").to_string())
        })
    }

    /// From the opening delimiter at `open`, index of its match.
    fn matching(&self, open: usize, oc: char, cc: char) -> usize {
        let mut depth = 0i32;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct(oc) {
                depth += 1;
            } else if t.is_punct(cc) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// From the `[` of an attribute, index of the closing `]`.
    fn skip_attr(&self, open: usize) -> usize {
        self.matching(open, '[', ']')
    }

    /// Skip a balanced `<...>` generics group starting at `open`
    /// (which must be `<`). `->` arrows inside do not close angles.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                if i > 0 && self.toks[i - 1].is_punct('-') {
                    // `->` return arrow.
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
            } else if t.is_punct('(') {
                i = self.matching(i, '(', ')');
            } else if t.is_punct('{') {
                // A brace inside generics means we overran a malformed
                // item; bail rather than eat the file.
                return i.saturating_sub(1);
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// `use a::b::{c, d as e}; use f::g::*;` — record alias → absolute
    /// segments. Returns the index after the closing `;`.
    fn parse_use(&mut self, start: usize, module: &[String]) -> usize {
        // Collect the prefix path up to `{`, `;`, or `*`.
        let mut i = start;
        let mut prefix: Vec<String> = Vec::new();
        loop {
            match self.toks.get(i) {
                Some(t) if t.kind == TokKind::Ident && t.text != "as" => {
                    prefix.push(t.text.trim_start_matches("r#").to_string());
                    i += 1;
                    if self.peek_punct(i, ':') && self.peek_punct(i + 1, ':') {
                        i += 2;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        let prefix = self.absolutize(&prefix, module);
        match self.toks.get(i) {
            Some(t) if t.is_punct('{') => {
                let close = self.matching(i, '{', '}');
                // Within the group: comma-separated subtrees. Nested
                // groups are handled one level deep (that is all the
                // workspace uses); deeper nesting records the leaf.
                let mut j = i + 1;
                let mut path = prefix.clone();
                while j <= close {
                    let t = &self.toks[j];
                    if t.kind == TokKind::Ident && t.text != "as" {
                        let leaf = t.text.trim_start_matches("r#").to_string();
                        path.push(leaf.clone());
                        if self.peek_punct(j + 1, ':') && self.peek_punct(j + 2, ':') {
                            j += 3;
                            continue;
                        }
                        // `as alias`?
                        if self.toks.get(j + 1).is_some_and(|n| n.is_ident("as")) {
                            if let Some(alias) = self.ident_at(j + 2) {
                                self.out.uses.insert(alias, path.clone());
                            }
                            j += 3;
                        } else {
                            let name = if leaf == "self" {
                                path.pop();
                                path.last().cloned()
                            } else {
                                Some(leaf)
                            };
                            if let Some(name) = name {
                                self.out.uses.insert(name, path.clone());
                            }
                            j += 1;
                        }
                        // Reset for the next comma-separated subtree.
                        while j <= close
                            && !self.toks[j].is_punct(',')
                            && !self.toks[j].is_punct('}')
                        {
                            j += 1;
                        }
                        path = prefix.clone();
                        j += 1;
                    } else {
                        j += 1;
                    }
                }
                i = close + 1;
            }
            Some(t) if t.is_punct('*') => {
                // Glob imports are ignored: the resolver's suffix
                // fallback covers cross-crate paths without them.
                i += 1;
            }
            Some(t) if t.is_ident("as") => {
                if let Some(alias) = self.ident_at(i + 1) {
                    self.out.uses.insert(alias, prefix.clone());
                }
                i += 2;
            }
            _ => {
                if let Some(last) = prefix.last() {
                    self.out.uses.insert(last.clone(), prefix.clone());
                }
            }
        }
        while i < self.toks.len() && !self.toks[i].is_punct(';') {
            i += 1;
        }
        i + 1
    }

    /// Resolve a leading `crate`/`self`/`super` against this file.
    fn absolutize(&self, segs: &[String], module: &[String]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut rest = segs;
        match segs.first().map(String::as_str) {
            Some("crate") => {
                out.push(self.out.crate_name.clone());
                rest = &segs[1..];
            }
            Some("self") => {
                out.push(self.out.crate_name.clone());
                out.extend(module.iter().cloned());
                rest = &segs[1..];
            }
            Some("super") => {
                out.push(self.out.crate_name.clone());
                let mut m = module.to_vec();
                let mut r = segs;
                while r.first().map(String::as_str) == Some("super") {
                    m.pop();
                    r = &r[1..];
                }
                out.extend(m);
                rest = r;
            }
            _ => {}
        }
        out.extend(rest.iter().cloned());
        out
    }

    /// `impl [<..>] Type [for Trait] { .. }` / `trait Name { .. }`.
    fn parse_impl_or_trait(
        &mut self,
        kw: usize,
        end: usize,
        module: &[String],
        is_trait: bool,
    ) -> usize {
        let mut i = kw + 1;
        if self.peek_punct(i, '<') {
            i = self.skip_angles(i) + 1;
        }
        // Type name: for `impl Trait for Type`, the segment after
        // `for`; otherwise the last path segment before `{`/`where`.
        let mut last_seg: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') {
                break;
            }
            if t.is_ident("where") {
                // Skip the where clause to the body brace.
                while i < end && !self.toks[i].is_punct('{') {
                    if self.toks[i].is_punct('<') {
                        i = self.skip_angles(i);
                    }
                    i += 1;
                }
                break;
            }
            if t.is_ident("for") && !is_trait {
                saw_for = true;
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                let name = t.text.trim_start_matches("r#").to_string();
                if saw_for {
                    // Keep the *last* segment of the for-type path.
                    after_for = Some(name);
                } else {
                    last_seg = Some(name);
                }
            }
            if t.is_punct('<') {
                i = self.skip_angles(i);
            }
            i += 1;
        }
        if i >= end || !self.toks[i].is_punct('{') {
            return i + 1;
        }
        let close = self.matching(i, '{', '}');
        let trait_surface = is_trait || saw_for;
        let ty = after_for.or(last_seg);
        self.items(
            i + 1,
            close.min(end),
            module,
            ty.as_deref().map(|t| (t, trait_surface)),
        );
        close + 1
    }

    /// `fn name(sig) [-> T] [where ..] { body }` — register the item
    /// and scan its body for calls and mentions.
    fn parse_fn(
        &mut self,
        kw: usize,
        end: usize,
        module: &[String],
        type_ctx: Option<(&str, bool)>,
        vis_pub: bool,
    ) -> usize {
        let Some(name) = self.ident_at(kw + 1) else {
            // `fn(` — a function-pointer type, not an item.
            return kw + 1;
        };
        let line = self.toks[kw].line;
        let mut i = kw + 2;
        // Signature: skip to the body `{` or a bodyless `;`, balancing
        // parens and generics.
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('(') {
                i = self.matching(i, '(', ')') + 1;
                continue;
            }
            if t.is_punct('<') {
                i = self.skip_angles(i) + 1;
                continue;
            }
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            i += 1;
        }
        let mut qual: Vec<String> = vec![self.out.crate_name.clone()];
        qual.extend(module.iter().cloned());
        if let Some((ty, _)) = type_ctx {
            qual.push(ty.to_string());
        }
        qual.push(name.clone());
        let trait_surface = type_ctx.is_some_and(|(_, t)| t);
        let mut item = FnItem {
            qual: qual.join("::"),
            name,
            type_ctx: type_ctx.map(|(ty, _)| ty.to_string()),
            line,
            is_pub: vis_pub || trait_surface,
            is_method: type_ctx.is_some(),
            in_test: self.in_test(kw),
            calls: Vec::new(),
            mentions: Vec::new(),
        };
        if i < end && self.toks[i].is_punct('{') {
            let close = self.matching(i, '{', '}');
            self.scan_body(i + 1, close.min(end), &mut item);
            self.out.fns.push(item);
            close + 1
        } else {
            self.out.fns.push(item);
            i + 1
        }
    }

    /// Collect calls, watched mentions, and metric literals in a body.
    fn scan_body(&mut self, start: usize, end: usize, item: &mut FnItem) {
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            // Method call: `.name(` or `.name::<..>(`.
            if t.is_punct('.') {
                if let Some(name) = self.ident_at(i + 1) {
                    let mut j = i + 2;
                    if self.peek_punct(j, ':')
                        && self.peek_punct(j + 1, ':')
                        && self.peek_punct(j + 2, '<')
                    {
                        j = self.skip_angles(j + 2) + 1;
                    }
                    if self.peek_punct(j, '(') {
                        self.record_metric_lit(&name, j, self.in_test(i));
                        item.calls.push(Call {
                            path: vec![name],
                            method: true,
                            line: t.line,
                            int_arg: self.int_arg_at(j),
                        });
                    }
                    // Jump past the name (and any turbofish, whose
                    // watched idents are still recorded) so the name
                    // is not re-scanned as a path call.
                    self.record_watch_range(i + 2, j, item);
                    i = j;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text) {
                let base = t.text.trim_start_matches("r#");
                if self.watch.contains(&base) {
                    item.mentions.push(Mention {
                        ident: base.to_string(),
                        line: t.line,
                    });
                }
                // Path call: `a::b::c(` (with optional turbofish).
                let mut path = vec![base.to_string()];
                let mut j = i + 1;
                while self.peek_punct(j, ':') && self.peek_punct(j + 1, ':') {
                    if self.peek_punct(j + 2, '<') {
                        let end = self.skip_angles(j + 2);
                        self.record_watch_range(j + 2, end, item);
                        j = end + 1;
                        break;
                    }
                    match self.ident_at(j + 2) {
                        Some(seg) => {
                            if self.watch.contains(&seg.as_str()) {
                                item.mentions.push(Mention {
                                    ident: seg.clone(),
                                    line: self.toks[j + 2].line,
                                });
                            }
                            path.push(seg);
                            j += 3;
                        }
                        None => break,
                    }
                }
                let is_macro = self.peek_punct(j, '!');
                if self.peek_punct(j, '(') && !is_macro {
                    self.record_metric_lit(
                        path.last().unwrap_or(&String::new()).as_str(),
                        j,
                        self.in_test(i),
                    );
                    item.calls.push(Call {
                        path,
                        method: false,
                        line: t.line,
                        int_arg: self.int_arg_at(j),
                    });
                }
                i = j.max(i + 1);
                continue;
            }
            i += 1;
        }
    }

    /// Record watched-ident mentions in the token range `[a, b)`
    /// (turbofish contents, which the main scan jumps over).
    fn record_watch_range(&self, a: usize, b: usize, item: &mut FnItem) {
        for t in self.toks.iter().take(b.min(self.toks.len())).skip(a) {
            if t.kind == TokKind::Ident && self.watch.contains(&t.text.trim_start_matches("r#")) {
                item.mentions.push(Mention {
                    ident: t.text.trim_start_matches("r#").to_string(),
                    line: t.line,
                });
            }
        }
    }

    /// The token after the `(` at `open`, when it is a bare integer
    /// literal forming the whole first argument.
    fn int_arg_at(&self, open: usize) -> Option<String> {
        let t = self.toks.get(open + 1)?;
        if t.kind != TokKind::Literal
            || !t.text.chars().all(|c| c.is_ascii_digit() || c == '_')
            || t.text.is_empty()
        {
            return None;
        }
        let next = self.toks.get(open + 2)?;
        (next.is_punct(')') || next.is_punct(',')).then(|| t.text.to_string())
    }

    /// If `name` is a metric-registration method and the token after
    /// the `(` at `open` is a string literal, record it.
    fn record_metric_lit(&mut self, name: &str, open: usize, in_test: bool) {
        if !METRIC_METHODS.contains(&name) {
            return;
        }
        if let Some(t) = self.toks.get(open + 1) {
            if t.kind == TokKind::Literal && t.text.starts_with('"') {
                self.out.metric_lits.push(MetricLit {
                    name: t.text.trim_matches('"').to_string(),
                    line: t.line,
                    in_test,
                });
            }
        }
    }

    /// `struct`/`enum`/`union` item: fold its token shape into the
    /// file's shape hash (non-test items only) and skip its body.
    fn parse_type_item(&mut self, kw: usize, end: usize) -> usize {
        let mut i = kw + 1;
        // Find the body `{`, a tuple-struct `(`, or a unit `;`.
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('<') {
                i = self.skip_angles(i) + 1;
                continue;
            }
            if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
                break;
            }
            i += 1;
        }
        let close = if i < end && self.toks[i].is_punct('{') {
            self.matching(i, '{', '}')
        } else if i < end && self.toks[i].is_punct('(') {
            let mut j = self.matching(i, '(', ')');
            while j < self.toks.len() && !self.toks[j].is_punct(';') {
                j += 1;
            }
            j
        } else {
            i
        };
        if !self.in_test(kw) {
            for t in &self.toks[kw..=close.min(self.toks.len() - 1)] {
                self.shape.write(t.text.as_bytes());
                self.shape.write(&[0xFF]);
            }
        }
        close + 1
    }

    /// `const NAME: T = value;` — record `*SCHEMA*` integer consts.
    fn parse_const(&mut self, kw: usize, end: usize) -> usize {
        let Some(name) = self.ident_at(kw + 1) else {
            return kw + 1;
        };
        let mut i = kw + 2;
        let mut value: Option<String> = None;
        while i < end && !self.toks[i].is_punct(';') {
            if self.toks[i].is_punct('=') {
                if let Some(v) = self.toks.get(i + 1) {
                    if v.kind == TokKind::Literal {
                        value = Some(v.text.to_string());
                    }
                }
            }
            if self.toks[i].is_punct('{') {
                i = self.matching(i, '{', '}');
            }
            i += 1;
        }
        if name.contains("SCHEMA") && !self.in_test(kw) {
            if let Some(v) = value {
                if v.chars().all(|c| c.is_ascii_digit() || c == '_') {
                    self.out.schema_consts.push((name, v));
                }
            }
        }
        i + 1
    }
}

/// FNV-1a 64: tiny, deterministic, good enough for shape hashing.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        let input = FileInput {
            rel_path: "crates/x/src/lib.rs",
            crate_name: "x",
            is_test_file: false,
            src,
        };
        parse_file(&input, &["HashMap", "RandomState"])
    }

    #[test]
    fn module_paths() {
        assert!(module_path_of("crates/x/src/lib.rs").is_empty());
        assert_eq!(module_path_of("crates/x/src/a.rs"), ["a"]);
        assert_eq!(module_path_of("crates/x/src/a/mod.rs"), ["a"]);
        assert_eq!(module_path_of("crates/x/src/a/b.rs"), ["a", "b"]);
        assert_eq!(module_path_of("crates/x/tests/t.rs"), ["t"]);
        assert_eq!(module_path_of("src/lib.rs"), Vec::<String>::new());
    }

    #[test]
    fn fn_items_with_context() {
        let pf = parse(
            r#"
            pub fn free() {}
            mod inner { pub fn nested() {} }
            struct S;
            impl S { pub fn method(&self) {} fn private(&self) {} }
            trait T { fn default_method(&self) { helper(); } }
            impl T for S { fn default_method(&self) {} }
            "#,
        );
        let quals: Vec<&str> = pf.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "x::free",
                "x::inner::nested",
                "x::S::method",
                "x::S::private",
                "x::T::default_method",
                "x::S::default_method",
            ]
        );
        assert!(pf.fns[0].is_pub && !pf.fns[0].is_method);
        assert!(pf.fns[2].is_method);
        let t_default = &pf.fns[4];
        assert_eq!(t_default.calls.len(), 1);
        assert_eq!(t_default.calls[0].path, ["helper"]);
    }

    #[test]
    fn calls_paths_methods_and_turbofish() {
        let pf = parse(
            r#"
            fn f() {
                helper();
                util::stamp();
                std::time::SystemTime::now();
                x.method_call();
                y.collect::<Vec<_>>();
                not_a_call!{};
                maybe_macro!(arg());
            }
            "#,
        );
        let f = &pf.fns[0];
        let paths: Vec<String> = f
            .calls
            .iter()
            .map(|c| {
                if c.method {
                    format!(".{}", c.path.join("::"))
                } else {
                    c.path.join("::")
                }
            })
            .collect();
        assert!(paths.contains(&"helper".to_string()));
        assert!(paths.contains(&"util::stamp".to_string()));
        assert!(paths.contains(&"std::time::SystemTime::now".to_string()));
        assert!(paths.contains(&".method_call".to_string()));
        assert!(paths.contains(&".collect".to_string()));
        assert!(paths.contains(&"arg".to_string()), "{paths:?}");
        assert!(!paths.contains(&"not_a_call".to_string()));
        assert!(!paths.contains(&"maybe_macro".to_string()));
    }

    #[test]
    fn uses_resolve_aliases_and_groups() {
        let pf = parse(
            r#"
            use std::collections::BTreeMap;
            use helper::{stamp, clock as wall};
            use crate::sub::thing;
            "#,
        );
        assert_eq!(pf.uses["BTreeMap"], ["std", "collections", "BTreeMap"]);
        assert_eq!(pf.uses["stamp"], ["helper", "stamp"]);
        assert_eq!(pf.uses["wall"], ["helper", "clock"]);
        assert_eq!(pf.uses["thing"], ["x", "sub", "thing"]);
    }

    #[test]
    fn mentions_and_test_regions() {
        let pf = parse(
            r#"
            fn hot() { let m: HashMap<u32, u32> = make(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let s = RandomState::new(); }
            }
            "#,
        );
        assert_eq!(pf.fns[0].mentions.len(), 1);
        assert_eq!(pf.fns[0].mentions[0].ident, "HashMap");
        let test_fn = &pf.fns[1];
        assert!(test_fn.in_test);
    }

    #[test]
    fn schema_consts_and_shape_hash() {
        let a = parse("const FOO_SCHEMA: u32 = 2;\npub struct R { a: u32 }\n");
        assert_eq!(
            a.schema_consts,
            [("FOO_SCHEMA".to_string(), "2".to_string())]
        );
        let b = parse("const FOO_SCHEMA: u32 = 2;\npub struct R { a: u32, b: u64 }\n");
        assert_ne!(
            a.shape_hash, b.shape_hash,
            "field edits must move the shape"
        );
        let c = parse("const FOO_SCHEMA: u32 = 3;\npub struct R { a: u32 }\n");
        assert_eq!(
            a.shape_hash, c.shape_hash,
            "const edits must not move the shape"
        );
    }

    #[test]
    fn metric_literals() {
        let pf = parse(
            r#"
            fn record(m: &mut R) {
                m.counter_add("tcp_retx_total", Labels::new(), 1);
                m.gauge_set("campaign_degraded", labels([]), 1.0);
                m.observe("queue_depth_bytes", l, 42);
                m.counter_add(variable_name, l, 1);
            }
            "#,
        );
        let names: Vec<&str> = pf.metric_lits.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            ["tcp_retx_total", "campaign_degraded", "queue_depth_bytes"]
        );
    }
}
