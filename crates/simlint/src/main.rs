//! CLI for [`simlint`]. See `simlint --help`.

use simlint::{compliance, config, lexer, registry, rules, semantic, Report};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The binary's own exit-code registry (simlint depends on no workspace
/// crate, so it keeps a local table; sim binaries use
/// `greenenvy::exitcode`).
mod exit {
    /// Clean: no unsuppressed findings / no compliance violations.
    pub const OK: i32 = 0;
    /// Findings or violations.
    pub const FINDINGS: i32 = 1;
    /// Usage or configuration error.
    pub const USAGE: i32 = 2;
}

const USAGE: &str = "\
simlint — workspace static analysis for determinism, panic-hygiene, and durability

USAGE:
    simlint [--workspace] [--root <dir>] [--config <file>] [--json]
            [--show-suppressed] [--list-rules] [--update-schema-lock] [files...]
    simlint compliance [--root <dir>] [--config <file>] [--json]

MODES:
    --workspace          lint every .rs file under the workspace root: token
                         rules plus the semantic pass (nondeterminism taint,
                         exit-code/schema/metric registries). Default when no
                         files are given.
    files...             token-lint just these files (no semantic pass; paths
                         are reported relative to the workspace root when
                         possible)
    compliance           cross-check //= DESIGN.md#anchor and //= <spec>#anchor
                         citations against the documented invariant registry;
                         report coverage (markdown table, or --json schema v1).
                         Exit 1 on uncovered invariants or stale anchors.

OPTIONS:
    --root <dir>         workspace root (default: nearest ancestor of the cwd
                         containing simlint.toml)
    --config <file>      config file (default: <root>/simlint.toml)
    --json               emit the machine-readable report on stdout
    --show-suppressed    include suppressed findings in human output
    --list-rules         print every rule id, default severity, and description
    --update-schema-lock rewrite schema.lock from the current record-struct
                         shapes and *_SCHEMA consts, then exit

EXIT CODES:
    0  no unsuppressed error-severity findings / no compliance violations
    1  findings / violations
    2  usage or configuration error
";

struct Args {
    compliance: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: bool,
    show_suppressed: bool,
    list_rules: bool,
    update_schema_lock: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        compliance: false,
        root: None,
        config: None,
        json: false,
        show_suppressed: false,
        list_rules: false,
        update_schema_lock: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            // Subcommand; conventionally first, but accepted anywhere
            // so `--root <dir> compliance` also works.
            "compliance" => args.compliance = true,
            "--workspace" => {} // the default; accepted for explicitness
            "--root" => args.root = Some(next_path(&mut it, "--root")?),
            "--config" => args.config = Some(next_path(&mut it, "--config")?),
            "--json" => args.json = true,
            "--show-suppressed" => args.show_suppressed = true,
            "--list-rules" => args.list_rules = true,
            "--update-schema-lock" => args.update_schema_lock = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(exit::OK);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    if args.compliance && (!args.files.is_empty() || args.update_schema_lock) {
        return Err("`simlint compliance` takes no file arguments".into());
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Nearest ancestor of the cwd containing `simlint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join(simlint::CONFIG_FILE).is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no {} found in {} or any ancestor (pass --root)",
                    simlint::CONFIG_FILE,
                    cwd.display()
                ))
            }
        }
    }
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list_rules {
        for r in rules::RULES {
            println!(
                "{:<22} {:<5} {}",
                r.id,
                r.default_severity.as_str(),
                r.description
            );
        }
        return Ok(exit::OK);
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root()?,
    };
    let cfg_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join(simlint::CONFIG_FILE));
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("reading {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&cfg_text, &cfg_path.to_string_lossy())?;

    if args.compliance {
        let report = compliance::run(&root, &cfg)?;
        if args.json {
            println!("{}", report.render_json());
        } else {
            print!("{}", report.render_markdown());
        }
        return Ok(if report.ok() {
            exit::OK
        } else {
            exit::FINDINGS
        });
    }

    if args.update_schema_lock {
        let files = simlint::load_workspace(&root, &cfg)?;
        let analysis = semantic::analyze(&files);
        let state = registry::schema_state(&analysis.parsed, &cfg.rule("schema-version-bump"));
        let lock_path = root.join(registry::SCHEMA_LOCK);
        // simlint::allow(raw-write, reason = "schema.lock is a dev-tool artifact regenerated on demand, not a result; simlint depends on no workspace crate so it cannot use core::campaign::persist")
        std::fs::write(&lock_path, registry::render_lock(&state))
            .map_err(|e| format!("writing {}: {e}", lock_path.display()))?;
        eprintln!(
            "simlint: wrote {} ({} tracked file(s))",
            lock_path.display(),
            state.len()
        );
        return Ok(exit::OK);
    }

    let start = Instant::now();
    let mut report = if args.files.is_empty() {
        simlint::lint_workspace(&root, &cfg)?
    } else {
        lint_files(&root, &cfg, &args.files)?
    };
    report.sort();
    let elapsed = start.elapsed();

    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human(args.show_suppressed));
        eprintln!("simlint: finished in {:.3}s", elapsed.as_secs_f64());
    }
    Ok(if report.count_gating() == 0 {
        exit::OK
    } else {
        exit::FINDINGS
    })
}

fn lint_files(root: &Path, cfg: &config::Config, files: &[PathBuf]) -> Result<Report, String> {
    let mut report = Report::default();
    for f in files {
        let abs = if f.is_absolute() {
            f.clone()
        } else {
            std::env::current_dir().map_err(|e| e.to_string())?.join(f)
        };
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("root")
            .to_string();
        let is_test_file = rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        let input = rules::FileInput {
            rel_path: &rel,
            crate_name: &crate_name,
            is_test_file,
            src: &src,
        };
        rules::lint_file(&input, cfg, &mut report.diags);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn main() {
    // A lexer sanity canary: the binary refuses to report "clean" if the
    // lexer cannot see through trivial camouflage. Costs microseconds and
    // turns a silently-broken lexer into a loud failure.
    let lexed = lexer::lex(r#"let s = "unwrap()"; // HashMap"#);
    assert!(
        lexed.tokens.iter().all(|t| t.text != "HashMap"),
        "lexer self-check failed"
    );

    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("simlint: error: {e}");
            std::process::exit(exit::USAGE);
        }
    }
}
