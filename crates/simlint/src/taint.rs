//! Nondeterminism taint: seed at primitive sinks, propagate through the
//! call graph, report every tainted `pub` function on the replayed
//! surface with the full call path down to the primitive.
//!
//! The token rules (`wall-clock`, `thread-id`, ...) catch a sink written
//! *in* a scoped crate; this pass catches laundering — a helper in an
//! unscoped crate that reads `SystemTime::now()` and is called from
//! `netsim::engine` sails through the token rules but not through here.
//!
//! Suppression points, both with the usual mandatory reason:
//!
//! * at the **sink line**, naming the sink's family rule (`wall-clock`,
//!   `thread-id`, `hash-container`, `rng-discipline`) or `nondet-taint`:
//!   the sink stops seeding, so nothing upstream is tainted by it. An
//!   allow that already justifies the token finding covers the taint
//!   seed too — one annotation, both passes.
//! * at the **reported function's definition line**, naming
//!   `nondet-taint`: that one surface function is accepted as tainted.

use crate::callgraph::{FnId, Graph};
use crate::config::RuleConfig;
use crate::diag::{Diagnostic, Severity};
use crate::rules::Suppression;
use std::collections::{BTreeMap, BTreeSet};

/// How a sink is recognized.
pub enum SinkKind {
    /// Expanded call path ends with these segments.
    CallSuffix(&'static [&'static str]),
    /// A watched identifier appears in the body (type or value
    /// position — `HashMap`, `RandomState`, ... are sinks by presence).
    Ident(&'static str),
}

pub struct SinkDef {
    /// Existing token-rule id whose `simlint::allow` also cuts this
    /// seed (the "family").
    pub family: &'static str,
    /// Human name of the primitive, printed at the end of taint paths.
    pub primitive: &'static str,
    pub kind: SinkKind,
}

/// The primitive nondeterminism sinks.
pub const SINKS: &[SinkDef] = &[
    SinkDef {
        family: "wall-clock",
        primitive: "std::time::Instant::now",
        kind: SinkKind::CallSuffix(&["Instant", "now"]),
    },
    SinkDef {
        family: "wall-clock",
        primitive: "std::time::SystemTime::now",
        kind: SinkKind::CallSuffix(&["SystemTime", "now"]),
    },
    SinkDef {
        family: "wall-clock",
        primitive: "std::time::SystemTime",
        kind: SinkKind::Ident("SystemTime"),
    },
    SinkDef {
        family: "thread-id",
        primitive: "std::thread::current",
        kind: SinkKind::CallSuffix(&["thread", "current"]),
    },
    SinkDef {
        family: "thread-id",
        primitive: "std::thread::ThreadId",
        kind: SinkKind::Ident("ThreadId"),
    },
    SinkDef {
        family: "hash-container",
        primitive: "std::collections::HashMap",
        kind: SinkKind::Ident("HashMap"),
    },
    SinkDef {
        family: "hash-container",
        primitive: "std::collections::HashSet",
        kind: SinkKind::Ident("HashSet"),
    },
    SinkDef {
        family: "thread-id",
        primitive: "std::collections::hash_map::RandomState",
        kind: SinkKind::Ident("RandomState"),
    },
    SinkDef {
        family: "thread-id",
        primitive: "std::hash::DefaultHasher",
        kind: SinkKind::Ident("DefaultHasher"),
    },
    SinkDef {
        family: "nondet-taint",
        primitive: "std::env::var",
        kind: SinkKind::CallSuffix(&["env", "var"]),
    },
    SinkDef {
        family: "nondet-taint",
        primitive: "std::env::var_os",
        kind: SinkKind::CallSuffix(&["env", "var_os"]),
    },
    SinkDef {
        family: "nondet-taint",
        primitive: "std::env::vars",
        kind: SinkKind::CallSuffix(&["env", "vars"]),
    },
    SinkDef {
        family: "nondet-taint",
        primitive: "std::env::vars_os",
        kind: SinkKind::CallSuffix(&["env", "vars_os"]),
    },
    SinkDef {
        family: "rng-discipline",
        primitive: "OS entropy (OsRng)",
        kind: SinkKind::Ident("OsRng"),
    },
    SinkDef {
        family: "rng-discipline",
        primitive: "OS entropy (getrandom)",
        kind: SinkKind::CallSuffix(&["getrandom"]),
    },
    SinkDef {
        family: "rng-discipline",
        primitive: "OS entropy (from_entropy)",
        kind: SinkKind::CallSuffix(&["from_entropy"]),
    },
];

/// The ident watch-list [`crate::parse::parse_file`] must record for
/// this pass to see its `Ident` sinks.
pub fn watched_idents() -> Vec<&'static str> {
    SINKS
        .iter()
        .filter_map(|s| match &s.kind {
            SinkKind::Ident(i) => Some(*i),
            SinkKind::CallSuffix(_) => None,
        })
        .collect()
}

/// Crates whose public API is the replayed surface when the config does
/// not scope `[rules.nondet-taint]` explicitly.
pub const DEFAULT_SURFACE: &[&str] = &[
    "netsim",
    "transport",
    "cca",
    "energy",
    "workload",
    "obs",
    "scenario",
];

/// Why a function is tainted: either it contains a seed, or it calls a
/// tainted function.
#[derive(Clone, Debug)]
enum Cause {
    Seed { primitive: &'static str, line: u32 },
    Call { next: FnId },
}

/// Run the taint pass. `sups` maps rel_path → that file's suppressions
/// (usage is marked in place so the driver can settle unused warnings).
pub fn run(
    g: &Graph,
    rc: &RuleConfig,
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    out: &mut Vec<Diagnostic>,
) {
    if !rc.enabled {
        return;
    }
    let severity = rc.severity.unwrap_or(Severity::Error);
    let surface: Vec<&str> = if rc.crates.is_empty() {
        DEFAULT_SURFACE.to_vec()
    } else {
        rc.crates.iter().map(String::as_str).collect()
    };

    // -- Seeds. A sink in test code never seeds; a sink cut by an allow
    //    naming its family (or nondet-taint) never seeds.
    let mut cause: BTreeMap<FnId, (u32, Cause)> = BTreeMap::new();
    let mut frontier: BTreeSet<(u32, FnId)> = BTreeSet::new();
    let seed = |id: FnId,
                primitive: &'static str,
                family: &'static str,
                line: u32,
                cause: &mut BTreeMap<FnId, (u32, Cause)>,
                frontier: &mut BTreeSet<(u32, FnId)>,
                sups: &mut BTreeMap<String, Vec<Suppression>>| {
        let node = &g.fns[id];
        if node.in_test {
            return;
        }
        if cut_at_sink(sups, &node.rel_path, line, family) {
            return;
        }
        // Keep the first (lowest-line) seed per fn for stable paths.
        let entry = cause
            .entry(id)
            .or_insert((0, Cause::Seed { primitive, line }));
        if let (_, Cause::Seed { line: l, .. }) = entry {
            if line < *l {
                *entry = (0, Cause::Seed { primitive, line });
            }
        }
        frontier.insert((0, id));
    };

    for e in &g.edges {
        if e.method {
            continue; // method sinks are covered by the ident watch
        }
        for s in SINKS {
            let SinkKind::CallSuffix(suffix) = &s.kind else {
                continue;
            };
            if ends_with(&e.expanded, suffix) {
                seed(
                    e.caller,
                    s.primitive,
                    s.family,
                    e.line,
                    &mut cause,
                    &mut frontier,
                    sups,
                );
            }
        }
    }
    for (id, mentions) in &g.mentions {
        for (ident, line) in mentions {
            for s in SINKS {
                let SinkKind::Ident(name) = &s.kind else {
                    continue;
                };
                if ident == name {
                    seed(
                        *id,
                        s.primitive,
                        s.family,
                        *line,
                        &mut cause,
                        &mut frontier,
                        sups,
                    );
                }
            }
        }
    }

    // -- Propagate up the reverse edges, breadth-first in (distance,
    //    FnId) order so every derived artifact is deterministic. Test
    //    nodes never become tainted: a compiled non-test function
    //    cannot call test code, so flowing taint through a test node
    //    could only manufacture false paths via the method fallback.
    let rev = g.reverse_edges();
    while let Some((dist, id)) = frontier.pop_first() {
        let Some(callers) = rev.get(&id) else {
            continue;
        };
        for r in callers {
            if g.fns[*r].in_test || cause.contains_key(r) {
                continue;
            }
            cause.insert(*r, (dist + 1, Cause::Call { next: id }));
            frontier.insert((dist + 1, *r));
        }
    }

    // -- Report tainted public surface functions.
    for id in cause.keys() {
        let node = &g.fns[*id];
        if !node.is_pub || !surface.iter().any(|c| *c == node.crate_name) {
            continue;
        }
        if rc
            .allow_paths
            .iter()
            .any(|p| node.rel_path.starts_with(p.as_str()))
        {
            continue;
        }
        let chain = render_chain(g, &cause, *id);
        let suppressed = suppress_at(sups, &node.rel_path, node.line);
        out.push(Diagnostic {
            rule: "nondet-taint",
            severity,
            path: node.rel_path.clone(),
            line: node.line,
            col: 1,
            message: format!(
                "public fn `{}` reaches a nondeterminism sink: {}",
                node.qual, chain
            ),
            suppressed,
        });
    }
}

/// `full` ends with `suffix`?
fn ends_with(full: &[String], suffix: &[&str]) -> bool {
    full.len() >= suffix.len()
        && full[full.len() - suffix.len()..]
            .iter()
            .zip(suffix)
            .all(|(a, b)| a == b)
}

/// Is there an allow at `line` naming `family` or `nondet-taint`? Marks
/// it used.
fn cut_at_sink(
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    rel_path: &str,
    line: u32,
    family: &'static str,
) -> bool {
    let Some(file_sups) = sups.get_mut(rel_path) else {
        return false;
    };
    let mut cut = false;
    for s in file_sups {
        if s.target_line == Some(line) && s.rules.iter().any(|r| r == family || r == "nondet-taint")
        {
            s.used = true;
            cut = true;
        }
    }
    cut
}

/// Reason of an allow(nondet-taint) at `line`, marking it used.
fn suppress_at(
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    rel_path: &str,
    line: u32,
) -> Option<String> {
    let file_sups = sups.get_mut(rel_path)?;
    for s in file_sups {
        if s.target_line == Some(line) && s.rules.iter().any(|r| r == "nondet-taint") {
            s.used = true;
            return Some(s.reason.clone());
        }
    }
    None
}

/// `a::b → c::d → std::time::SystemTime::now (sink at path:line)`.
fn render_chain(g: &Graph, cause: &BTreeMap<FnId, (u32, Cause)>, start: FnId) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut cur = start;
    loop {
        parts.push(g.fns[cur].qual.clone());
        match cause.get(&cur) {
            Some((_, Cause::Call { next })) => {
                // The graph is over-approximate, not acyclic; `cause`
                // entries always point strictly toward a seed, so this
                // terminates, but guard against pathological lengths.
                if parts.len() > 64 {
                    parts.push("…".into());
                    break;
                }
                cur = *next;
            }
            Some((_, Cause::Seed { primitive, line })) => {
                parts.push(format!(
                    "{primitive} (sink at {}:{line})",
                    g.fns[cur].rel_path
                ));
                break;
            }
            None => break,
        }
    }
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parse::parse_file;
    use crate::rules::FileInput;

    fn pf(rel_path: &str, crate_name: &str, src: &str) -> crate::parse::ParsedFile {
        parse_file(
            &FileInput {
                rel_path,
                crate_name,
                is_test_file: false,
                src,
            },
            &watched_idents(),
        )
    }

    fn run_taint(files: Vec<crate::parse::ParsedFile>) -> Vec<Diagnostic> {
        let g = build(&files);
        let mut out = Vec::new();
        run(&g, &RuleConfig::default(), &mut BTreeMap::new(), &mut out);
        out
    }

    //= DESIGN.md#inv-nondet-taint
    #[test]
    fn laundering_through_helper_crate_is_caught_with_full_path() {
        let diags = run_taint(vec![
            pf(
                "crates/scenario/src/lib.rs",
                "scenario",
                "use helper::stamp;\npub fn build() { stamp(); }\n",
            ),
            pf(
                "crates/helper/src/lib.rs",
                "helper",
                "pub fn stamp() { std::time::SystemTime::now(); }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.rule, "nondet-taint");
        assert_eq!(d.path, "crates/scenario/src/lib.rs");
        assert!(
            d.message
                .contains("scenario::build → helper::stamp → std::time::SystemTime::now"),
            "{}",
            d.message
        );
    }

    #[test]
    fn sink_level_allow_cuts_the_seed() {
        let files = vec![
            pf(
                "crates/scenario/src/lib.rs",
                "scenario",
                "use helper::stamp;\npub fn build() { stamp(); }\n",
            ),
            pf(
                "crates/helper/src/lib.rs",
                "helper",
                "pub fn stamp() { std::time::SystemTime::now(); }\n",
            ),
        ];
        let g = build(&files);
        let mut sups = BTreeMap::new();
        sups.insert(
            "crates/helper/src/lib.rs".to_string(),
            vec![Suppression {
                rules: vec!["wall-clock".into()],
                reason: "test".into(),
                target_line: Some(1),
                comment_line: 1,
                used: false,
            }],
        );
        let mut out = Vec::new();
        run(&g, &RuleConfig::default(), &mut sups, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(sups["crates/helper/src/lib.rs"][0].used);
    }

    #[test]
    fn non_surface_crates_are_not_reported() {
        let diags = run_taint(vec![pf(
            "crates/bench/src/lib.rs",
            "bench",
            "pub fn ts() { std::time::Instant::now(); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_sinks_do_not_seed() {
        let diags = run_taint(vec![pf(
            "crates/netsim/src/lib.rs",
            "netsim",
            "#[cfg(test)]\nmod tests {\n pub fn t() { std::time::Instant::now(); }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
