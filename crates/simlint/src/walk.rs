//! Workspace walker: find the `.rs` files to lint and classify them.

use crate::config::Config;
use std::path::{Path, PathBuf};

/// One discovered source file.
#[derive(Debug)]
pub struct SourceFile {
    pub abs_path: PathBuf,
    /// Repo-relative, `/`-separated.
    pub rel_path: String,
    /// `crates/<name>/...` → `<name>`; anything else → `root`.
    pub crate_name: String,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_file: bool,
}

/// Recursively collect the workspace's `.rs` files, skipping
/// `cfg.skip_dirs` (matched by directory name or repo-relative path).
/// Results are sorted by relative path so output order is stable across
/// filesystems.
pub fn collect(root: &Path, cfg: &Config) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_dir(root, root, cfg, &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn walk_dir(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = rel_path(root, &path);
        if entry.file_type()?.is_dir() {
            if name.starts_with('.')
                || cfg
                    .skip_dirs
                    .iter()
                    .any(|s| s.as_str() == name || s.as_str() == rel)
            {
                continue;
            }
            walk_dir(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                crate_name: crate_of(&rel),
                is_test_file: is_test_path(&rel),
                abs_path: path,
                rel_path: rel,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string()
}

fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(crate_of("crates/netsim/src/engine.rs"), "netsim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("examples/quickstart.rs"), "root");
        assert!(is_test_path("crates/core/tests/golden.rs"));
        assert!(is_test_path("crates/bench/benches/micro.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/netsim/src/engine.rs"));
    }
}
