//! A small comment/string-aware Rust lexer.
//!
//! `simlint` does not need a full parse of Rust — every rule it enforces
//! is expressible over a token stream — but it absolutely needs to know
//! the difference between `unwrap()` in code and `unwrap()` in a doc
//! comment or a string literal. The lexer therefore handles, precisely:
//! line and (nested) block comments, plain/byte/raw string literals,
//! char literals vs lifetimes, raw identifiers, and numeric literals
//! (without eating `..` range punctuation). Everything else becomes
//! single-character punctuation tokens.
//!
//! Comments are not discarded: they are collected separately so the
//! suppression layer can find `simlint::allow(...)` markers.

/// What a token is. Rules match on identifiers and punctuation; literals
/// are kept only so pattern windows cannot accidentally bridge over them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#async`).
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, `:`, ...).
    Punct,
    /// A lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// A string, byte-string, char, or numeric literal (content opaque).
    Literal,
}

/// One token, with its 1-based source position.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    pub kind: TokKind,
    /// The token text. For `Literal` this is the raw literal including
    /// quotes; rules never look inside it.
    pub text: &'a str,
    pub line: u32,
    pub col: u32,
}

impl<'a> Tok<'a> {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A comment, kept for suppression parsing.
#[derive(Clone, Debug)]
pub struct Comment<'a> {
    /// Comment text including the `//` / `/*` delimiters.
    pub text: &'a str,
    /// Line the comment starts on.
    pub line: u32,
    /// True if a non-whitespace token appeared earlier on the same line
    /// (i.e. this is a trailing comment: `let x = 1; // why`).
    pub trailing: bool,
}

/// Lexer output: the token stream plus the comments.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Tok<'a>>,
    pub comments: Vec<Comment<'a>>,
}

/// Tokenize `src`. Never fails: unterminated constructs are closed at
/// end-of-file (the lint must degrade gracefully on code rustc would
/// reject — fixtures are exactly that).
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Whether a token has already been emitted on the current line
    /// (distinguishes trailing comments from whole-line comments).
    line_has_code: bool,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking line/col. Multi-byte UTF-8 is advanced
    /// byte-wise; columns are therefore byte columns, which is what
    /// editors and `rustc` report for ASCII source anyway.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_lit(),
                b'\'' => self.quote(),
                b'b' | b'r' | b'c' => self.literal_prefix(),
                b'0'..=b'9' => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    let (line, col, start) = (self.line, self.col, self.pos);
                    self.bump();
                    self.emit(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Tok {
            kind,
            text: &self.src[start..self.pos],
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let (start, line, trailing) = (self.pos, self.line, self.line_has_code);
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.pos],
            line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let (start, line, trailing) = (self.pos, self.line, self.line_has_code);
        self.bump_n(2);
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.pos],
            line,
            trailing,
        });
    }

    /// Plain (escaped) string literal starting at `"`.
    fn string_lit(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.emit(TokKind::Literal, start, line, col);
    }

    /// Raw string body starting at the first `#` or `"` after the `r`.
    /// The `r`/prefix has already been consumed by the caller.
    fn raw_string_body(&mut self, start: usize, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // `r#ident` (raw identifier) — rewind is impossible, but the
            // prefix consumer only calls us when a quote or hash follows,
            // so a missing quote here means `r#` + ident: lex the ident.
            self.ident_continue(start, line, col);
            return;
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                // Need `hashes` pound signs to close.
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        self.emit(TokKind::Literal, start, line, col);
    }

    /// Handle `b"..."`, `r"..."`, `br#"..."#`, `rb`, `c"..."` prefixes;
    /// anything that turns out not to be a literal lexes as an identifier.
    fn literal_prefix(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            // b"..." / c"..."
            (b'b' | b'c', b'"') => {
                self.bump();
                self.string_lit_at(start, line, col);
            }
            // b'x'
            (b'b', b'\'') => {
                self.bump();
                self.char_lit_at(start, line, col);
            }
            // r"..." / r#"..."# / r#ident
            (b'r', b'"') | (b'r', b'#') => {
                self.bump();
                self.raw_string_body(start, line, col);
            }
            // br"..." / br#"..."# / rb variants
            (b'b', b'r') | (b'r', b'b') if c2 == b'"' || c2 == b'#' => {
                self.bump_n(2);
                self.raw_string_body(start, line, col);
            }
            _ => self.ident(),
        }
    }

    /// Continue a plain string literal whose prefix began at `start`.
    fn string_lit_at(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.emit(TokKind::Literal, start, line, col);
    }

    fn char_lit_at(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump_n(2);
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        self.emit(TokKind::Literal, start, line, col);
    }

    /// `'` — either a char literal or a lifetime. A lifetime is `'` +
    /// ident-start where the following char is not a closing quote
    /// (`'a'` is a char, `'a` is a lifetime, `'\n'` is a char).
    fn quote(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        let c1 = self.peek(1);
        if is_ident_start(c1) && self.peek(2) != b'\'' {
            // Lifetime: consume `'` + ident chars.
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.emit(TokKind::Lifetime, start, line, col);
        } else {
            self.char_lit_at(start, line, col);
        }
    }

    fn number(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the number; `1..n` does not (the `..`
                // must stay punctuation for the range-index rule).
                self.bump();
            } else {
                break;
            }
        }
        self.emit(TokKind::Literal, start, line, col);
    }

    fn ident(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.ident_continue(start, line, col);
    }

    fn ident_continue(&mut self, start: usize, line: u32, col: u32) {
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        self.emit(TokKind::Ident, start, line, col);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"Instant::now() "quoted" inside"#;
            let real = foo();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap"));
        assert!(!ids.contains(&"Instant"));
        assert!(ids.contains(&"real"));
        assert!(ids.contains(&"foo"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn escaped_char_literal() {
        let lexed = lex(r"let c = '\n'; let q = '\'';");
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text)
            .collect();
        assert_eq!(lits, vec![r"'\n'", r"'\''"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lexed = lex("for i in 0..10 {}");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "range dots must stay punctuation");
    }

    #[test]
    fn trailing_comments_are_flagged() {
        let lexed = lex("let x = 1; // trailing\n// whole-line\n");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn comment_positions_recorded() {
        let lexed = lex("fn a() {}\n// note\nfn b() {}\n");
        assert_eq!(lexed.comments[0].line, 2);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#async = 1;");
        assert!(ids.iter().any(|s| s.contains("async")));
    }
}
