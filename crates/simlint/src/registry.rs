//! The registry rules: workspace-wide consistency checks that need the
//! parsed item/call view rather than a per-file token pattern.
//!
//! * `exit-code-registry` — every `process::exit` argument must be a
//!   named constant (the exit-code table in `greenenvy::exitcode`, or a
//!   binary-local table), never an integer literal. Exit codes are part
//!   of the scripted interface (`verify.sh` greps for 4/5/130); a
//!   literal in one binary drifts silently.
//! * `schema-version-bump` — persisted record layouts (journal, matrix,
//!   suite verdict) are fingerprinted into `schema.lock` alongside
//!   their `*_SCHEMA` const values; editing a struct without bumping
//!   the const (and refreshing the lock) is an error.
//! * `metric-name-registry` — Prometheus metric names must be
//!   snake_case, carry a registered prefix, and be owned by exactly one
//!   crate.

use crate::callgraph::Graph;
use crate::config::RuleConfig;
use crate::diag::{Diagnostic, Severity};
use crate::parse::ParsedFile;
use crate::rules::Suppression;
use std::collections::BTreeMap;

/// Mirror of [`crate::rules::rule_applies`] for parsed files.
fn applies(rc: &RuleConfig, crate_name: &str, rel_path: &str) -> bool {
    if !rc.enabled {
        return false;
    }
    if !rc.crates.is_empty() && !rc.crates.iter().any(|c| c == crate_name) {
        return false;
    }
    if !rc.paths.is_empty() && !rc.paths.iter().any(|p| rel_path.starts_with(p.as_str())) {
        return false;
    }
    if rc
        .allow_paths
        .iter()
        .any(|p| rel_path.starts_with(p.as_str()))
    {
        return false;
    }
    true
}

/// Reason of an allow naming `rule` at `line`, marking it used.
fn suppress_at(
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    rel_path: &str,
    line: u32,
    rule: &str,
) -> Option<String> {
    let file_sups = sups.get_mut(rel_path)?;
    for s in file_sups {
        if s.target_line == Some(line) && s.rules.iter().any(|r| r == rule) {
            s.used = true;
            return Some(s.reason.clone());
        }
    }
    None
}

// ---------------------------------------------------------------------
// exit-code-registry
// ---------------------------------------------------------------------

pub fn exit_codes(
    g: &Graph,
    rc: &RuleConfig,
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    out: &mut Vec<Diagnostic>,
) {
    if !rc.enabled {
        return;
    }
    let severity = rc.severity.unwrap_or(Severity::Error);
    for e in &g.edges {
        if e.method {
            continue;
        }
        let is_exit = e.expanded.len() >= 2
            && e.expanded[e.expanded.len() - 2] == "process"
            && e.expanded[e.expanded.len() - 1] == "exit";
        if !is_exit {
            continue;
        }
        let Some(lit) = &e.int_arg else {
            continue;
        };
        let node = &g.fns[e.caller];
        if !applies(rc, &node.crate_name, &node.rel_path) {
            continue;
        }
        if node.in_test && !rc.include_tests {
            continue;
        }
        let suppressed = suppress_at(sups, &node.rel_path, e.line, "exit-code-registry");
        out.push(Diagnostic {
            rule: "exit-code-registry",
            severity,
            path: node.rel_path.clone(),
            line: e.line,
            col: 1,
            message: format!(
                "process::exit({lit}) uses a literal; name it in the exit-code registry (greenenvy::exitcode) instead"
            ),
            suppressed,
        });
    }
}

// ---------------------------------------------------------------------
// schema-version-bump
// ---------------------------------------------------------------------

/// Name of the lock file at the workspace root.
pub const SCHEMA_LOCK: &str = "schema.lock";

/// Recorded state of one tracked file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaEntry {
    pub shape_hash: u64,
    /// `*_SCHEMA` const name → literal value, sorted.
    pub consts: BTreeMap<String, String>,
}

/// Current schema state of every tracked file (those matched by the
/// rule's `paths`/`crates` scoping). Tracking is strictly opt-in: with
/// no `paths`/`crates` configured the rule tracks nothing — most files
/// are not persisted-record files, so "no *_SCHEMA const" would be
/// noise, not a finding.
pub fn schema_state(files: &[ParsedFile], rc: &RuleConfig) -> BTreeMap<String, SchemaEntry> {
    let mut out = BTreeMap::new();
    if rc.paths.is_empty() && rc.crates.is_empty() {
        return out;
    }
    for pf in files {
        if !applies(rc, &pf.crate_name, &pf.rel_path) {
            continue;
        }
        out.insert(
            pf.rel_path.clone(),
            SchemaEntry {
                shape_hash: pf.shape_hash,
                consts: pf.schema_consts.iter().cloned().collect(),
            },
        );
    }
    out
}

/// Render the lock file, deterministic.
pub fn render_lock(state: &BTreeMap<String, SchemaEntry>) -> String {
    let mut s = String::from(
        "# simlint schema.lock v1 — record-struct fingerprints for schema-version-bump.\n\
         # Regenerate with `simlint --update-schema-lock` after bumping the *_SCHEMA const.\n",
    );
    for (path, e) in state {
        s.push_str(&format!("{path} shape={:016x}", e.shape_hash));
        for (k, v) in &e.consts {
            s.push_str(&format!(" {k}={v}"));
        }
        s.push('\n');
    }
    s
}

/// Parse a lock file (unknown lines are errors — the lock is machine-written).
pub fn parse_lock(text: &str) -> Result<BTreeMap<String, SchemaEntry>, String> {
    let mut out = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let path = parts
            .next()
            .ok_or_else(|| format!("{SCHEMA_LOCK}:{}: empty entry", n + 1))?;
        let shape = parts
            .next()
            .and_then(|p| p.strip_prefix("shape="))
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("{SCHEMA_LOCK}:{}: expected shape=<hex>", n + 1))?;
        let mut consts = BTreeMap::new();
        for p in parts {
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| format!("{SCHEMA_LOCK}:{}: expected NAME=value", n + 1))?;
            consts.insert(k.to_string(), v.to_string());
        }
        out.insert(
            path.to_string(),
            SchemaEntry {
                shape_hash: shape,
                consts,
            },
        );
    }
    Ok(out)
}

/// Compare current state against the lock, emitting diagnostics. The
/// caller does the IO; `lock_text` is `None` when the lock file does
/// not exist yet.
pub fn schema_bump(
    files: &[ParsedFile],
    rc: &RuleConfig,
    lock_text: Option<&str>,
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    out: &mut Vec<Diagnostic>,
) {
    if !rc.enabled {
        return;
    }
    let severity = rc.severity.unwrap_or(Severity::Error);
    let state = schema_state(files, rc);
    if state.is_empty() {
        return; // rule not scoped to any present file
    }
    let lock = match lock_text {
        Some(t) => match parse_lock(t) {
            Ok(l) => l,
            Err(e) => {
                out.push(Diagnostic {
                    rule: "schema-version-bump",
                    severity,
                    path: SCHEMA_LOCK.to_string(),
                    line: 1,
                    col: 1,
                    message: format!("unreadable {SCHEMA_LOCK}: {e}"),
                    suppressed: None,
                });
                return;
            }
        },
        None => BTreeMap::new(),
    };
    let mut diag = |path: &str, msg: String| {
        let suppressed = suppress_at(sups, path, 1, "schema-version-bump");
        out.push(Diagnostic {
            rule: "schema-version-bump",
            severity,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: msg,
            suppressed,
        });
    };
    for (path, cur) in &state {
        if cur.consts.is_empty() {
            diag(
                path,
                "tracked record file defines no *_SCHEMA const; persisted layouts must be versioned"
                    .into(),
            );
            continue;
        }
        match lock.get(path) {
            None => diag(
                path,
                format!("not recorded in {SCHEMA_LOCK}; run `simlint --update-schema-lock`"),
            ),
            Some(locked) => {
                if locked.shape_hash != cur.shape_hash && locked.consts == cur.consts {
                    diag(
                        path,
                        format!(
                            "record structs changed but {} did not; bump the schema const and refresh {SCHEMA_LOCK}",
                            cur.consts.keys().cloned().collect::<Vec<_>>().join("/"),
                        ),
                    );
                } else if locked != cur {
                    diag(
                        path,
                        format!(
                            "{SCHEMA_LOCK} is stale for this file; run `simlint --update-schema-lock`"
                        ),
                    );
                }
            }
        }
    }
    // Entries for files that vanished (or fell out of scope) are stale.
    for path in lock.keys() {
        if !state.contains_key(path) {
            diag(
                path,
                format!(
                    "{SCHEMA_LOCK} entry no longer matches a tracked file; run `simlint --update-schema-lock`"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// metric-name-registry
// ---------------------------------------------------------------------

pub fn metric_names(
    files: &[ParsedFile],
    rc: &RuleConfig,
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    out: &mut Vec<Diagnostic>,
) {
    if !rc.enabled {
        return;
    }
    let severity = rc.severity.unwrap_or(Severity::Error);
    // Deterministic site order: files sorted by path, literals by line.
    let mut sorted: Vec<&ParsedFile> = files
        .iter()
        .filter(|pf| applies(rc, &pf.crate_name, &pf.rel_path))
        .collect();
    sorted.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    let mut owner: BTreeMap<&str, &str> = BTreeMap::new(); // name → first crate
    let mut diags: Vec<(String, u32, String)> = Vec::new();
    for pf in &sorted {
        for m in &pf.metric_lits {
            if m.in_test && !rc.include_tests {
                continue;
            }
            let snake = m
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                && m.name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase());
            if !snake {
                diags.push((
                    pf.rel_path.clone(),
                    m.line,
                    format!("metric name `{}` is not snake_case", m.name),
                ));
                continue;
            }
            if !rc.prefixes.is_empty()
                && !rc.prefixes.iter().any(|p| m.name.starts_with(p.as_str()))
            {
                diags.push((
                    pf.rel_path.clone(),
                    m.line,
                    format!(
                        "metric name `{}` lacks a registered prefix (expected one of: {})",
                        m.name,
                        rc.prefixes.join(", ")
                    ),
                ));
            }
            match owner.get(m.name.as_str()) {
                None => {
                    owner.insert(m.name.as_str(), pf.crate_name.as_str());
                }
                Some(own) if *own != pf.crate_name.as_str() => {
                    diags.push((
                        pf.rel_path.clone(),
                        m.line,
                        format!(
                            "metric `{}` is already owned by crate `{own}`; a metric name must belong to one crate",
                            m.name
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    for (path, line, msg) in diags {
        let suppressed = suppress_at(sups, &path, line, "metric-name-registry");
        out.push(Diagnostic {
            rule: "metric-name-registry",
            severity,
            path,
            line,
            col: 1,
            message: msg,
            suppressed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parse::parse_file;
    use crate::rules::FileInput;

    fn pf(rel_path: &str, crate_name: &str, src: &str) -> ParsedFile {
        parse_file(
            &FileInput {
                rel_path,
                crate_name,
                is_test_file: false,
                src,
            },
            &[],
        )
    }

    //= DESIGN.md#inv-exit-code-registry
    #[test]
    fn literal_exit_codes_flagged_constants_pass() {
        let files = vec![pf(
            "crates/bench/src/bin/x.rs",
            "bench",
            "fn main() { if bad() { std::process::exit(4); } std::process::exit(CODE); }\n",
        )];
        let g = build(&files);
        let mut out = Vec::new();
        exit_codes(&g, &RuleConfig::default(), &mut BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("process::exit(4)"),
            "{}",
            out[0].message
        );
    }

    //= DESIGN.md#inv-schema-version-bump
    #[test]
    fn schema_lock_round_trip_and_modes() {
        let rc = RuleConfig {
            paths: vec!["crates/core/src/journal.rs".into()],
            ..RuleConfig::default()
        };
        let v2 = vec![pf(
            "crates/core/src/journal.rs",
            "core",
            "pub const JOURNAL_SCHEMA: u32 = 2;\npub struct Rec { a: u32 }\n",
        )];
        let state = schema_state(&v2, &rc);
        let lock = render_lock(&state);
        assert_eq!(parse_lock(&lock).unwrap(), state);

        // Clean: no diagnostics.
        let mut out = Vec::new();
        schema_bump(&v2, &rc, Some(&lock), &mut BTreeMap::new(), &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Struct edited, const unchanged → "bump" error.
        let edited = vec![pf(
            "crates/core/src/journal.rs",
            "core",
            "pub const JOURNAL_SCHEMA: u32 = 2;\npub struct Rec { a: u32, b: u64 }\n",
        )];
        let mut out = Vec::new();
        schema_bump(&edited, &rc, Some(&lock), &mut BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("bump the schema const"),
            "{}",
            out[0].message
        );

        // Struct edited AND const bumped → stale-lock error (refresh).
        let bumped = vec![pf(
            "crates/core/src/journal.rs",
            "core",
            "pub const JOURNAL_SCHEMA: u32 = 3;\npub struct Rec { a: u32, b: u64 }\n",
        )];
        let mut out = Vec::new();
        schema_bump(&bumped, &rc, Some(&lock), &mut BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("stale"), "{}", out[0].message);

        // No lock at all → must record.
        let mut out = Vec::new();
        schema_bump(&v2, &rc, None, &mut BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("not recorded"),
            "{}",
            out[0].message
        );
    }

    //= DESIGN.md#inv-metric-name-registry
    #[test]
    fn metric_checks() {
        let rc = RuleConfig {
            prefixes: vec!["tcp_".into(), "campaign_".into()],
            ..RuleConfig::default()
        };
        let files = vec![
            pf(
                "crates/obs/src/lib.rs",
                "obs",
                "fn a(m: &mut M) { m.counter_add(\"tcp_ok_total\", l, 1); m.counter_add(\"BadName\", l, 1); m.gauge_set(\"unprefixed_thing\", l, 1.0); }\n",
            ),
            pf(
                "crates/core/src/lib.rs",
                "core",
                "fn b(m: &mut M) { m.counter_add(\"tcp_ok_total\", l, 1); }\n",
            ),
        ];
        let mut out = Vec::new();
        metric_names(&files, &rc, &mut BTreeMap::new(), &mut out);
        let msgs: Vec<&str> = out.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("not snake_case")));
        assert!(msgs.iter().any(|m| m.contains("lacks a registered prefix")));
        // Files sort by path, so `core` claims the name first.
        assert!(msgs
            .iter()
            .any(|m| m.contains("already owned by crate `core`")));
    }
}
