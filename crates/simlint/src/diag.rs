//! Typed diagnostics, human and JSON rendering, and a minimal JSON
//! reader used by the `--json` schema round-trip test.
//!
//! The JSON writer is hand-rolled because simlint is std-only by
//! design (see `Cargo.toml`); the schema is small and flat enough that
//! this is less code than a serde integration would be.

use std::fmt::Write as _;

/// How serious a finding is. Only `Error` findings gate the build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One finding: rule, position, message, and (if an inline
/// `simlint::allow` covered it) the suppression reason.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule id, e.g. `wall-clock`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    pub message: String,
    /// `Some(reason)` if suppressed by an inline allow; suppressed
    /// findings never gate, but are reported in JSON and on request.
    pub suppressed: Option<String>,
}

/// A whole lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub diags: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    /// Findings that gate the build: unsuppressed errors.
    pub fn gating(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.suppressed.is_none() && d.severity == Severity::Error)
    }

    pub fn count_gating(&self) -> usize {
        self.gating().count()
    }

    pub fn count_suppressed(&self) -> usize {
        self.diags.iter().filter(|d| d.suppressed.is_some()).count()
    }

    pub fn count_warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.suppressed.is_none() && d.severity == Severity::Warn)
            .count()
    }

    /// Sort for stable output: path, line, col, rule.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
    }

    /// Human-readable rendering, one line per finding plus a summary.
    /// `show_suppressed` includes suppressed findings (marked as such).
    pub fn render_human(&self, show_suppressed: bool) -> String {
        let mut out = String::new();
        for d in &self.diags {
            match &d.suppressed {
                None => {
                    let _ = writeln!(
                        out,
                        "{}:{}:{}: {}[{}]: {}",
                        d.path,
                        d.line,
                        d.col,
                        d.severity.as_str(),
                        d.rule,
                        d.message
                    );
                }
                Some(reason) if show_suppressed => {
                    let _ = writeln!(
                        out,
                        "{}:{}:{}: allowed[{}]: {} (reason: {})",
                        d.path, d.line, d.col, d.rule, d.message, reason
                    );
                }
                Some(_) => {}
            }
        }
        let _ = writeln!(
            out,
            "simlint: {} file(s), {} error(s), {} warning(s), {} suppressed",
            self.files_scanned,
            self.count_gating(),
            self.count_warnings(),
            self.count_suppressed()
        );
        out
    }

    /// JSON rendering. Schema (version 1):
    /// ```json
    /// {"version":1,"files_scanned":N,
    ///  "summary":{"errors":N,"warnings":N,"suppressed":N},
    ///  "findings":[{"rule":"...","severity":"error","path":"...",
    ///               "line":N,"col":N,"message":"...",
    ///               "suppressed":false,"reason":null}]}
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"version\":1,\"files_scanned\":{},\"summary\":{{\"errors\":{},\"warnings\":{},\"suppressed\":{}}},\"findings\":[",
            self.files_scanned,
            self.count_gating(),
            self.count_warnings(),
            self.count_suppressed()
        );
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"suppressed\":{},\"reason\":{}}}",
                json_str(d.rule),
                json_str(d.severity.as_str()),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message),
                d.suppressed.is_some(),
                match &d.suppressed {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value, for the round-trip test and any tool that wants
/// to consume simlint output without a JSON dependency.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict enough for round-tripping simlint's own
/// output; not a general-purpose validator.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*pos) {
                match c {
                    b'"' => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    _ => {
                        // Copy the full UTF-8 sequence.
                        let start = *pos;
                        *pos += 1;
                        while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?,
                        );
                    }
                }
            }
            Err("unterminated string".into())
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>().map(Json::Num).map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, sev: Severity, suppressed: Option<&str>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: sev,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "a \"quoted\" message\nwith newline".into(),
            suppressed: suppressed.map(String::from),
        }
    }

    #[test]
    fn gating_excludes_warns_and_suppressed() {
        let report = Report {
            diags: vec![
                diag("a", Severity::Error, None),
                diag("b", Severity::Warn, None),
                diag("c", Severity::Error, Some("intentional")),
            ],
            files_scanned: 1,
        };
        assert_eq!(report.count_gating(), 1);
        assert_eq!(report.count_warnings(), 1);
        assert_eq!(report.count_suppressed(), 1);
    }

    #[test]
    fn json_round_trips_with_escapes() {
        let mut report = Report {
            diags: vec![
                diag("wall-clock", Severity::Error, None),
                diag("rng-discipline", Severity::Warn, Some("named stream \\ ok")),
            ],
            files_scanned: 2,
        };
        report.sort();
        let rendered = report.render_json();
        let parsed = parse_json(&rendered).expect("own output must parse");
        assert_eq!(parsed.get("version").and_then(Json::as_num), Some(1.0));
        let findings = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 2);
        // Sorted by (path, line, col, rule): rng-discipline first.
        assert_eq!(
            findings[0].get("rule").and_then(Json::as_str),
            Some("rng-discipline")
        );
        assert_eq!(
            findings[0].get("reason").and_then(Json::as_str),
            Some("named stream \\ ok")
        );
        assert_eq!(
            findings[1].get("message").and_then(Json::as_str),
            Some("a \"quoted\" message\nwith newline")
        );
        assert_eq!(findings[1].get("reason"), Some(&Json::Null));
    }
}
