//! `simlint.toml` — per-rule, per-crate configuration.
//!
//! The parser covers the TOML subset the config actually uses: comments,
//! `[section.sub]` headers, and `key = value` where value is a string, a
//! bool, an integer, or a single-line array of strings. Anything fancier
//! is a config error with a line number — better to fail loudly than to
//! silently ignore a rule someone thought they configured.

use crate::diag::Severity;
use std::collections::BTreeMap;

/// Settings for one rule. Empty lists mean "no constraint".
#[derive(Clone, Debug)]
pub struct RuleConfig {
    pub enabled: bool,
    /// Severity override (rules carry their own default).
    pub severity: Option<Severity>,
    /// Crates the rule applies to (crate dir name, or `root` for the
    /// top-level package). Empty: all crates.
    pub crates: Vec<String>,
    /// Path prefixes (repo-relative, `/`-separated) the rule is limited
    /// to. Empty: everywhere within the configured crates.
    pub paths: Vec<String>,
    /// Path prefixes exempt from the rule (e.g. the blessed durability
    /// module for the raw-write rule).
    pub allow_paths: Vec<String>,
    /// Lint test code too (default: test modules/files are skipped).
    pub include_tests: bool,
    /// Registered name prefixes (used by `metric-name-registry`; empty
    /// means any prefix is accepted).
    pub prefixes: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            enabled: true,
            severity: None,
            crates: Vec::new(),
            paths: Vec::new(),
            allow_paths: Vec::new(),
            include_tests: false,
            prefixes: Vec::new(),
        }
    }
}

/// The whole config file.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Directories (by name or repo-relative path) the walker skips.
    pub skip_dirs: Vec<String>,
    /// Per-rule settings, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Settings for `rule`, defaulting when the file does not mention it.
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }
}

/// Parse a config document. `source` is used in error messages.
pub fn parse(text: &str, source: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section: Option<String> = None; // rule name under [rules.*]

    // Pre-pass: join multi-line arrays (`key = [` ... `]`) into single
    // logical lines, keeping the starting line number for errors.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let stripped = strip_comment(raw);
        match &mut pending {
            Some((_, buf)) => {
                buf.push(' ');
                buf.push_str(stripped.trim());
                if array_closed(buf) {
                    let (l, s) = pending.take().expect("pending is Some");
                    logical.push((l, s));
                }
            }
            None => {
                let line = stripped.trim();
                if line.contains('=') && line.trim_end().ends_with('[')
                    || (line.contains("= [") && !array_closed(line))
                {
                    pending = Some((idx + 1, line.to_string()));
                } else {
                    logical.push((idx + 1, line.to_string()));
                }
            }
        }
    }
    if let Some((l, _)) = pending {
        return Err(format!("{source}:{l}: unterminated multi-line array"));
    }

    for (lineno, line) in logical {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("{source}:{lineno}: unterminated section header"))?
                .trim();
            if let Some(rule) = name.strip_prefix("rules.") {
                section = Some(rule.trim().to_string());
                cfg.rules.entry(rule.trim().to_string()).or_default();
            } else {
                return Err(format!(
                    "{source}:{lineno}: unknown section [{name}] (only [rules.<id>] is supported)"
                ));
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("{source}:{lineno}: expected `key = value`"))?;
        let key = key.trim();
        let value = parse_value(value.trim()).map_err(|e| format!("{source}:{lineno}: {e}"))?;
        match &section {
            None => match key {
                "version" => {} // accepted for forward compatibility
                "skip_dirs" => cfg.skip_dirs = value.into_strings(key)?,
                _ => return Err(format!("{source}:{lineno}: unknown top-level key `{key}`")),
            },
            Some(rule) => {
                let rc = cfg.rules.get_mut(rule).expect("section pre-registered");
                match key {
                    "enabled" => rc.enabled = value.into_bool(key)?,
                    "severity" => {
                        let s = value.into_string(key)?;
                        rc.severity = Some(Severity::parse(&s).ok_or_else(|| {
                            format!("{source}:{lineno}: bad severity `{s}` (error|warn)")
                        })?);
                    }
                    "crates" => rc.crates = value.into_strings(key)?,
                    "paths" => rc.paths = value.into_strings(key)?,
                    "allow_paths" => rc.allow_paths = value.into_strings(key)?,
                    "include_tests" => rc.include_tests = value.into_bool(key)?,
                    "prefixes" => rc.prefixes = value.into_strings(key)?,
                    _ => {
                        return Err(format!(
                            "{source}:{lineno}: unknown rule key `{key}` for [rules.{rule}]"
                        ))
                    }
                }
            }
        }
    }
    Ok(cfg)
}

/// True once a line (or joined buffer) whose value opens an array also
/// closes it, quote-aware.
fn array_closed(s: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    let mut opened = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => {
                depth += 1;
                opened = true;
            }
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    !opened || depth <= 0
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

enum Value {
    Str(String),
    Bool(bool),
    Int,
    Strings(Vec<String>),
}

impl Value {
    fn into_string(self, key: &str) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("`{key}` wants a string")),
        }
    }

    fn into_bool(self, key: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(format!("`{key}` wants true/false")),
        }
    }

    fn into_strings(self, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::Strings(v) => Ok(v),
            _ => Err(format!("`{key}` wants an array of strings")),
        }
    }
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut items = Vec::new();
        for part in split_array(body)? {
            match parse_value(&part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only contain strings".into()),
            }
        }
        return Ok(Value::Strings(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or("unterminated string")?;
        // The config needs no escapes beyond literal text; reject
        // backslashes so nobody is surprised later.
        if body.contains('\\') {
            return Err("escape sequences are not supported in config strings".into());
        }
        return Ok(Value::Str(body.to_string()));
    }
    s.parse::<i64>()
        .map(|_| Value::Int)
        .map_err(|_| format!("cannot parse value `{s}`"))
}

/// Split an array body on commas that are outside quotes.
fn split_array(body: &str) -> Result<Vec<String>, String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                if !cur.trim().is_empty() {
                    parts.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err("unterminated string in array".into());
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_defaults() {
        let cfg = parse(
            r#"
            version = 1
            skip_dirs = ["target", "vendor"] # keep out
            [rules.wall-clock]
            severity = "error"
            crates = ["netsim", "transport"]
            [rules.range-index]
            severity = "warn"
            enabled = false
            "#,
            "test",
        )
        .unwrap();
        assert_eq!(cfg.skip_dirs, vec!["target", "vendor"]);
        let wc = cfg.rule("wall-clock");
        assert_eq!(wc.severity, Some(Severity::Error));
        assert_eq!(wc.crates, vec!["netsim", "transport"]);
        assert!(wc.enabled);
        assert!(!cfg.rule("range-index").enabled);
        // Unmentioned rule: defaults.
        let d = cfg.rule("raw-write");
        assert!(d.enabled && d.severity.is_none() && d.crates.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("[rules.x]\nseverity = \"fatal\"\n", "simlint.toml").unwrap_err();
        assert!(err.contains("simlint.toml:2"), "{err}");
        let err = parse("nonsense\n", "f").unwrap_err();
        assert!(err.contains("f:1"), "{err}");
    }

    #[test]
    fn multi_line_arrays() {
        let cfg = parse(
            "[rules.raw-write]\nallow_paths = [\n  \"a/b.rs\", # blessed\n  \"c/d.rs\",\n]\n",
            "t",
        )
        .unwrap();
        assert_eq!(cfg.rule("raw-write").allow_paths, vec!["a/b.rs", "c/d.rs"]);
        let err = parse("x = [\n \"a\",\n", "t").unwrap_err();
        assert!(err.contains("unterminated"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let cfg = parse("skip_dirs = [\"a#b\"]\n", "t").unwrap();
        assert_eq!(cfg.skip_dirs, vec!["a#b"]);
    }
}
