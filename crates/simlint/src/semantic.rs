//! Driver for the workspace-wide semantic pass: parse every file, build
//! the call graph, then run the taint and registry rules.
//!
//! The token pass ([`crate::rules::lint_file_deferred`]) and this pass
//! share one suppression namespace: the driver collects each file's
//! `simlint::allow` markers during the token pass, hands them here to be
//! honored/marked-used, and only afterwards settles unused-suppression
//! warnings. Results are a pure function of the file *set* — node ids,
//! seed order, and propagation order are all sorted — which the
//! walk-order proptest pins.

use crate::callgraph::{self, Graph};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::parse::{parse_file, ParsedFile};
use crate::registry;
use crate::rules::{FileInput, Suppression};
use crate::taint;
use crate::LoadedFile;
use std::collections::BTreeMap;

/// Parsed view of the workspace.
pub struct Analysis {
    pub parsed: Vec<ParsedFile>,
    pub graph: Graph,
}

/// Parse all files and build the graph. Input order does not matter.
pub fn analyze(files: &[LoadedFile]) -> Analysis {
    let watch = taint::watched_idents();
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|f| {
            parse_file(
                &FileInput {
                    rel_path: &f.rel_path,
                    crate_name: &f.crate_name,
                    is_test_file: f.is_test_file,
                    src: &f.src,
                },
                &watch,
            )
        })
        .collect();
    let graph = callgraph::build(&parsed);
    Analysis { parsed, graph }
}

/// Run every semantic rule over an [`Analysis`]. `lock_text` is the
/// current `schema.lock` content (None: file absent).
pub fn run(
    analysis: &Analysis,
    cfg: &Config,
    lock_text: Option<&str>,
    sups: &mut BTreeMap<String, Vec<Suppression>>,
    out: &mut Vec<Diagnostic>,
) {
    taint::run(&analysis.graph, &cfg.rule("nondet-taint"), sups, out);
    registry::exit_codes(&analysis.graph, &cfg.rule("exit-code-registry"), sups, out);
    registry::schema_bump(
        &analysis.parsed,
        &cfg.rule("schema-version-bump"),
        lock_text,
        sups,
        out,
    );
    registry::metric_names(
        &analysis.parsed,
        &cfg.rule("metric-name-registry"),
        sups,
        out,
    );
}
