//! The rule engine: test-region detection, inline suppressions, and the
//! rule matchers themselves.
//!
//! Every rule is a pattern over the token stream produced by
//! [`crate::lexer`]. Rules are registered in [`RULES`] with a default
//! severity and a one-line description; `simlint.toml` scopes each rule
//! to crates/paths and may override severity. See DESIGN.md ("Static
//! analysis & enforced invariants") for the invariant each rule guards.

use crate::config::{Config, RuleConfig};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Comment, Tok, TokKind};

/// Static description of one rule.
pub struct RuleDef {
    pub id: &'static str,
    pub default_severity: Severity,
    pub description: &'static str,
}

/// All rules, in reporting order. The two pseudo-rules at the end
/// (`suppression`, `unused-suppression`) police the allow mechanism
/// itself and cannot be scoped away in config.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        id: "hash-container",
        default_severity: Severity::Error,
        description: "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
    },
    RuleDef {
        id: "wall-clock",
        default_severity: Severity::Error,
        description: "Instant::now/SystemTime read the host clock; simulation state must be a pure function of config",
    },
    RuleDef {
        id: "thread-id",
        default_severity: Severity::Error,
        description: "thread identity and RandomState hashers vary run to run and break replay",
    },
    RuleDef {
        id: "rng-discipline",
        default_severity: Severity::Error,
        description: "SimRng must be constructed in the named-stream seeding modules; ad-hoc streams perturb replay",
    },
    RuleDef {
        id: "panic-hygiene",
        default_severity: Severity::Error,
        description: "unwrap/expect/panic! in engine hot paths; return typed errors or use debug_assert!",
    },
    RuleDef {
        id: "range-index",
        default_severity: Severity::Error,
        description: "range indexing (x[a..b]) panics on bad bounds; use .get(..) or split_at with a checked length",
    },
    RuleDef {
        id: "raw-write",
        default_severity: Severity::Error,
        description: "raw fs::write/File::create bypasses the atomic, fsynced durability layer (core::campaign::persist)",
    },
    RuleDef {
        id: "float-unordered-acc",
        default_severity: Severity::Error,
        description: "float accumulation over an unordered container depends on iteration order; collect and sort first",
    },
    RuleDef {
        id: "suppression",
        default_severity: Severity::Error,
        description: "simlint::allow(...) must name known rules and give a reason",
    },
    RuleDef {
        id: "unused-suppression",
        default_severity: Severity::Warn,
        description: "a simlint::allow that suppressed nothing is stale; remove it",
    },
    // -- Semantic (call-graph) rules: matched by crate::semantic, not by
    //    the per-file token matchers. Registered here so --list-rules
    //    shows them and allow annotations accept their ids.
    RuleDef {
        id: "nondet-taint",
        default_severity: Severity::Error,
        description: "public sim-surface fn transitively reaches a nondeterminism sink (wall clock, thread id, RandomState, env, OS entropy)",
    },
    RuleDef {
        id: "exit-code-registry",
        default_severity: Severity::Error,
        description: "process::exit must take a named constant from the exit-code registry, not an integer literal",
    },
    RuleDef {
        id: "schema-version-bump",
        default_severity: Severity::Error,
        description: "persisted record structs changed without a *_SCHEMA const bump (tracked in schema.lock)",
    },
    RuleDef {
        id: "metric-name-registry",
        default_severity: Severity::Error,
        description: "metric names must be snake_case with a registered prefix and owned by exactly one crate",
    },
];

/// Rule ids owned by the semantic pass ([`crate::semantic`]). The token
/// pass never emits them and must not flag their suppressions as unused.
pub const SEMANTIC_RULES: &[&str] = &[
    "nondet-taint",
    "exit-code-registry",
    "schema-version-bump",
    "metric-name-registry",
];

/// True when `id` is matched by the semantic pass rather than the
/// per-file token matchers.
pub fn is_semantic(id: &str) -> bool {
    SEMANTIC_RULES.contains(&id)
}

pub fn rule_def(id: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.id == id)
}

/// One file to lint, with its workspace context.
pub struct FileInput<'a> {
    /// Repo-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// Crate directory name (`netsim`, ...) or `root` for the top-level
    /// package.
    pub crate_name: &'a str,
    /// True for files under `tests/`, `benches/`, or `examples/`
    /// directories: never hot-path or replayed code.
    pub is_test_file: bool,
    pub src: &'a str,
}

/// Lint one file, appending findings (suppressed ones included, marked).
///
/// Suppressions that name only semantic rules are *not* flagged as
/// unused here — single-file token linting cannot know whether the
/// workspace-wide semantic pass will consume them. The workspace driver
/// uses [`lint_file_deferred`] and settles unused-suppression warnings
/// after the semantic pass has run.
pub fn lint_file(input: &FileInput<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let sups = lint_file_deferred(input, cfg, out);
    report_unused(&sups, input.rel_path, true, out);
}

/// Emit an unused-suppression warning for every suppression in `sups`
/// still unused. With `skip_semantic_only`, suppressions naming only
/// semantic rules are exempt (their usage is settled by the semantic
/// pass).
pub fn report_unused(
    sups: &[Suppression],
    rel_path: &str,
    skip_semantic_only: bool,
    out: &mut Vec<Diagnostic>,
) {
    for sup in sups {
        if sup.used {
            continue;
        }
        if skip_semantic_only && sup.rules.iter().all(|r| is_semantic(r)) {
            continue;
        }
        out.push(Diagnostic {
            rule: "unused-suppression",
            severity: Severity::Warn,
            path: rel_path.to_string(),
            line: sup.comment_line,
            col: 1,
            message: format!(
                "simlint::allow({}) suppressed nothing; remove it",
                sup.rules.join(", ")
            ),
            suppressed: None,
        });
    }
}

/// Token-pass body of [`lint_file`]: appends findings and returns the
/// file's suppressions with token-rule usage marked, leaving
/// unused-suppression reporting to the caller.
pub fn lint_file_deferred(
    input: &FileInput<'_>,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let lexed = lex(input.src);
    let toks = &lexed.tokens;
    let test_mask = test_region_mask(toks);
    let mut suppressions = collect_suppressions(&lexed.comments, toks, input, out);

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut ctx = Ctx {
        input,
        toks,
        test_mask: &test_mask,
        out: &mut raw,
    };

    for def in RULES {
        let rc = cfg.rule(def.id);
        if !rule_applies(&rc, input) {
            continue;
        }
        let severity = rc.severity.unwrap_or(def.default_severity);
        let skip_tests = !rc.include_tests;
        match def.id {
            "hash-container" => ctx.rule_hash_container(severity, skip_tests),
            "wall-clock" => ctx.rule_wall_clock(severity, skip_tests),
            "thread-id" => ctx.rule_thread_id(severity, skip_tests),
            "rng-discipline" => ctx.rule_rng_discipline(severity, skip_tests),
            "panic-hygiene" => ctx.rule_panic_hygiene(severity, skip_tests),
            "range-index" => ctx.rule_range_index(severity, skip_tests),
            "raw-write" => ctx.rule_raw_write(severity, skip_tests),
            "float-unordered-acc" => ctx.rule_float_unordered(severity, skip_tests),
            // Pseudo-rules run in collect_suppressions / below.
            "suppression" | "unused-suppression" => {}
            // Semantic rules run workspace-wide in crate::semantic.
            id if is_semantic(id) => {}
            other => unreachable!("unregistered rule {other}"),
        }
    }

    // Apply inline suppressions.
    for d in &mut raw {
        if let Some(sup) = suppressions
            .iter_mut()
            .find(|s| s.target_line == Some(d.line) && s.rules.iter().any(|r| r == d.rule))
        {
            d.suppressed = Some(sup.reason.clone());
            sup.used = true;
        }
    }
    out.append(&mut raw);
    suppressions
}

/// Does `rc` apply to this file at all?
pub fn rule_applies(rc: &RuleConfig, input: &FileInput<'_>) -> bool {
    if !rc.enabled {
        return false;
    }
    if !rc.crates.is_empty() && !rc.crates.iter().any(|c| c == input.crate_name) {
        return false;
    }
    if !rc.paths.is_empty()
        && !rc
            .paths
            .iter()
            .any(|p| input.rel_path.starts_with(p.as_str()))
    {
        return false;
    }
    if rc
        .allow_paths
        .iter()
        .any(|p| input.rel_path.starts_with(p.as_str()))
    {
        return false;
    }
    true
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Per-token "is test code" mask: true inside items annotated
/// `#[cfg(test)]` / `#[test]` / `#[bench]` (including `#[cfg(any(test,..))]`).
pub fn test_region_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Outer attribute `#[...]` (inner `#![...]` attrs are skipped —
        // they scope the enclosing item, which for `#![cfg(test)]` at
        // file level would blank the whole file; nothing here uses that).
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let attr_start = i;
            let (attr_end, is_test_attr) = scan_attr(toks, i + 1);
            if is_test_attr {
                let region_end = item_end(toks, attr_end + 1);
                for m in mask.iter_mut().take(region_end + 1).skip(attr_start) {
                    *m = true;
                }
                i = region_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// From the `[` at `open`, find the matching `]`; report whether the
/// attribute mentions `test` or `bench` as an identifier.
fn scan_attr(toks: &[Tok<'_>], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut is_test = false;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i, is_test);
            }
        } else if toks[i].is_ident("test") || toks[i].is_ident("bench") {
            is_test = true;
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), is_test)
}

/// End of the item starting at `start` (after its attributes): the
/// matching `}` of its first body brace, or the first top-level `;`
/// (for `#[cfg(test)] use ...;`-style items). Any further attributes
/// on the item are stepped over.
fn item_end(toks: &[Tok<'_>], start: usize) -> usize {
    let mut i = start;
    // Step over stacked attributes.
    while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
        let (end, _) = scan_attr(toks, i + 1);
        i = end + 1;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') {
            if depth == 0 {
                return matching_brace(toks, i);
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// One parsed `// simlint::allow(...)` marker. Public so the semantic
/// pass can honor and mark-used the same suppressions the token pass
/// collected.
pub struct Suppression {
    pub rules: Vec<String>,
    pub reason: String,
    /// Line the allow applies to: the comment's own line for trailing
    /// comments, else the line of the next code token. `None` if the
    /// comment dangles at end of file.
    pub target_line: Option<u32>,
    pub comment_line: u32,
    pub used: bool,
}

/// Parse `// simlint::allow(rule, ..., reason = "...")` comments.
/// Malformed markers produce `suppression` diagnostics immediately.
fn collect_suppressions(
    comments: &[Comment<'_>],
    toks: &[Tok<'_>],
    input: &FileInput<'_>,
    out: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut sups = Vec::new();
    for c in comments {
        // Doc comments are documentation: an allow-marker "mentioned" in
        // one (e.g. this crate's own docs) is prose, never a suppression.
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(at) = c.text.find("simlint::allow") else {
            continue;
        };
        let err = |msg: String| Diagnostic {
            rule: "suppression",
            severity: Severity::Error,
            path: input.rel_path.to_string(),
            line: c.line,
            col: 1,
            message: msg,
            suppressed: None,
        };
        let rest = &c.text[at + "simlint::allow".len()..];
        let Some(body) = rest.trim_start().strip_prefix('(').and_then(|r| {
            // The body must close on the same comment.
            r.find(')').map(|end| &r[..end])
        }) else {
            out.push(err(
                "malformed simlint::allow: expected `(rule, reason = \"...\")`".into(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut reason: Option<String> = None;
        for part in split_args(body) {
            let part = part.trim();
            if let Some(val) = part.strip_prefix("reason") {
                let val = val.trim_start();
                let Some(q) = val.strip_prefix('=').map(str::trim_start) else {
                    out.push(err("malformed reason: expected `reason = \"...\"`".into()));
                    continue;
                };
                let Some(text) = q.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
                    out.push(err("reason must be a double-quoted string".into()));
                    continue;
                };
                if text.trim().is_empty() {
                    out.push(err("reason must not be empty".into()));
                    continue;
                }
                reason = Some(text.to_string());
            } else if !part.is_empty() {
                if rule_def(part).is_none() {
                    out.push(err(format!(
                        "unknown rule `{part}` in simlint::allow (see --list-rules)"
                    )));
                } else {
                    rules.push(part.to_string());
                }
            }
        }
        let Some(reason) = reason else {
            out.push(err(
                "simlint::allow requires a reason: simlint::allow(rule, reason = \"why\")".into(),
            ));
            continue;
        };
        if rules.is_empty() {
            out.push(err("simlint::allow names no rules".into()));
            continue;
        }
        let target_line = if c.trailing {
            Some(c.line)
        } else {
            toks.iter().find(|t| t.line > c.line).map(|t| t.line)
        };
        sups.push(Suppression {
            rules,
            reason,
            target_line,
            comment_line: c.line,
            used: false,
        });
    }
    sups
}

/// Split allow-body on commas outside quotes.
fn split_args(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in body.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    parts.push(cur);
    parts
}

// ---------------------------------------------------------------------
// The rule matchers
// ---------------------------------------------------------------------

struct Ctx<'a, 'b> {
    input: &'a FileInput<'a>,
    toks: &'a [Tok<'a>],
    test_mask: &'a [bool],
    out: &'b mut Vec<Diagnostic>,
}

impl Ctx<'_, '_> {
    fn skip(&self, i: usize, skip_tests: bool) -> bool {
        skip_tests && (self.input.is_test_file || self.test_mask[i])
    }

    fn push(&mut self, rule: &'static str, severity: Severity, i: usize, message: String) {
        let t = &self.toks[i];
        self.out.push(Diagnostic {
            rule,
            severity,
            path: self.input.rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            suppressed: None,
        });
    }

    /// `a::b` at position i?
    fn path2(&self, i: usize, a: &str, b: &str) -> bool {
        self.toks[i].is_ident(a)
            && self.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(i + 3).is_some_and(|t| t.is_ident(b))
    }

    fn rule_hash_container(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            let t = &self.toks[i];
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                self.push(
                    "hash-container",
                    sev,
                    i,
                    format!(
                        "{} has nondeterministic iteration order; use BTreeMap/BTreeSet or an indexed Vec",
                        t.text
                    ),
                );
            }
        }
    }

    fn rule_wall_clock(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            if self.path2(i, "Instant", "now") {
                self.push(
                    "wall-clock",
                    sev,
                    i,
                    "Instant::now() reads the host clock; simulated time must come from the engine"
                        .into(),
                );
            } else if self.toks[i].is_ident("SystemTime") {
                self.push(
                    "wall-clock",
                    sev,
                    i,
                    "SystemTime reads the host clock; simulated time must come from the engine"
                        .into(),
                );
            }
        }
    }

    fn rule_thread_id(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            if self.path2(i, "thread", "current") {
                self.push(
                    "thread-id",
                    sev,
                    i,
                    "thread::current() varies run to run; derive identity from simulation config"
                        .into(),
                );
            } else if self.toks[i].is_ident("RandomState") {
                self.push(
                    "thread-id",
                    sev,
                    i,
                    "RandomState seeds hashers from process entropy; replay needs a fixed hasher"
                        .into(),
                );
            }
        }
    }

    fn rule_rng_discipline(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            if self.path2(i, "SimRng", "new") {
                self.push(
                    "rng-discipline",
                    sev,
                    i,
                    "SimRng::new outside the named-stream seeding modules; fork a named stream \
                     from the scenario seed (or allow with the stream's salt as the reason)"
                        .into(),
                );
            }
        }
    }

    fn rule_panic_hygiene(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            let t = &self.toks[i];
            // `.unwrap()` / `.expect(` — method position only.
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && self.toks[i - 1].is_punct('.')
                && self.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                self.push(
                    "panic-hygiene",
                    sev,
                    i,
                    format!(
                        ".{}() can panic on a hot path; return a typed error or use debug_assert!",
                        t.text
                    ),
                );
            }
            // panic-family macros.
            if (t.is_ident("panic")
                || t.is_ident("unreachable")
                || t.is_ident("todo")
                || t.is_ident("unimplemented"))
                && self.toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                self.push(
                    "panic-hygiene",
                    sev,
                    i,
                    format!(
                        "{}! aborts the run; return a typed error or use debug_assert!",
                        t.text
                    ),
                );
            }
        }
    }

    fn rule_range_index(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            // `expr[ ... .. ... ]`: `[` preceded by an expression-ending
            // token (ident / `)` / `]`) with a top-level `..` inside.
            if !self.toks[i].is_punct('[') {
                continue;
            }
            let indexing = i > 0
                && (self.toks[i - 1].kind == TokKind::Ident
                    || self.toks[i - 1].is_punct(')')
                    || self.toks[i - 1].is_punct(']'));
            if !indexing {
                continue;
            }
            let mut depth = 0i32;
            for j in i..self.toks.len().min(i + 64) {
                let t = &self.toks[j];
                if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && t.is_punct('.')
                    && self.toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
                {
                    self.push(
                        "range-index",
                        sev,
                        i,
                        "range indexing panics on out-of-range bounds; use .get(range) or a checked split".into(),
                    );
                    break;
                }
            }
        }
    }

    fn rule_raw_write(&mut self, sev: Severity, skip_tests: bool) {
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            let hit = if self.path2(i, "fs", "write") {
                Some("fs::write")
            } else if self.path2(i, "File", "create") {
                Some("File::create")
            } else if self.path2(i, "OpenOptions", "new") {
                Some("OpenOptions::new")
            } else {
                None
            };
            if let Some(api) = hit {
                self.push(
                    "raw-write",
                    sev,
                    i,
                    format!(
                        "{api} bypasses the durability layer; write artifacts via core::campaign::persist (atomic + fsync)"
                    ),
                );
            }
        }
    }

    /// Heuristic: an identifier declared as a Hash container in this file
    /// whose `.values()/.keys()/.iter()` chain reaches `.sum/.fold/.product`
    /// within the same statement.
    fn rule_float_unordered(&mut self, sev: Severity, skip_tests: bool) {
        // Pass 1: names declared as HashMap/HashSet (`x: HashMap<...>` or
        // `x = HashMap::new()` styles both put the type after the name).
        let mut hash_names: Vec<&str> = Vec::new();
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if (t.is_ident("HashMap") || t.is_ident("HashSet")) && i >= 2 {
                // Walk back over `:` / `=` / `&` / `mut` to the name.
                let mut j = i - 1;
                while j > 0
                    && (self.toks[j].is_punct(':')
                        || self.toks[j].is_punct('=')
                        || self.toks[j].is_punct('&')
                        || self.toks[j].is_ident("mut"))
                {
                    j -= 1;
                }
                if self.toks[j].kind == TokKind::Ident {
                    hash_names.push(self.toks[j].text);
                }
            }
        }
        if hash_names.is_empty() {
            return;
        }
        // Pass 2: `name . (values|keys|iter) ( )` ... `. (sum|fold|product)`
        // before the statement ends.
        for i in 0..self.toks.len() {
            if self.skip(i, skip_tests) {
                continue;
            }
            let t = &self.toks[i];
            if t.kind != TokKind::Ident || !hash_names.contains(&t.text) {
                continue;
            }
            if !(self.toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && self.toks.get(i + 2).is_some_and(|n| {
                    n.is_ident("values") || n.is_ident("keys") || n.is_ident("iter")
                }))
            {
                continue;
            }
            for j in i + 3..self.toks.len().min(i + 48) {
                let u = &self.toks[j];
                if u.is_punct(';') || u.is_punct('{') {
                    break;
                }
                if u.is_punct('.')
                    && self.toks.get(j + 1).is_some_and(|n| {
                        n.is_ident("sum") || n.is_ident("fold") || n.is_ident("product")
                    })
                {
                    self.push(
                        "float-unordered-acc",
                        sev,
                        i,
                        format!(
                            "accumulating over `{}` (a Hash container) is order-dependent for floats; \
                             collect keys, sort, then fold",
                            t.text
                        ),
                    );
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let input = FileInput {
            rel_path: "crates/netsim/src/x.rs",
            crate_name: "netsim",
            is_test_file: false,
            src,
        };
        let mut out = Vec::new();
        lint_file(&input, &Config::default(), &mut out);
        out
    }

    fn gating(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.suppressed.is_none() && d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = r#"
            fn hot() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x: Option<u32> = None; x.unwrap(); }
            }
        "#;
        assert!(gating(&lint_src(src)).is_empty());
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_file() {
        let src = r#"
            #[cfg(test)]
            use std::collections::BTreeMap;
            fn hot(x: Option<u32>) -> u32 { x.unwrap() }
        "#;
        let diags = lint_src(src);
        assert_eq!(gating(&diags).len(), 1, "{diags:?}");
        assert_eq!(gating(&diags)[0].rule, "panic-hygiene");
    }

    #[test]
    fn suppression_requires_reason_and_known_rule() {
        let diags =
            lint_src("// simlint::allow(panic-hygiene)\nfn f(x: Option<u32>) { x.unwrap(); }\n");
        assert!(diags.iter().any(|d| d.rule == "suppression"));
        let diags = lint_src("// simlint::allow(no-such-rule, reason = \"x\")\nfn f() {}\n");
        assert!(diags.iter().any(|d| d.rule == "suppression"));
    }

    #[test]
    fn suppression_with_reason_suppresses_next_line() {
        let src = "// simlint::allow(panic-hygiene, reason = \"boot-time config error\")\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let diags = lint_src(src);
        assert!(gating(&diags).is_empty(), "{diags:?}");
        assert!(diags.iter().any(|d| d.suppressed.is_some()));
        // And it is not reported unused.
        assert!(!diags.iter().any(|d| d.rule == "unused-suppression"));
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); } // simlint::allow(panic-hygiene, reason = \"demo\")\n";
        assert!(gating(&lint_src(src)).is_empty());
    }

    #[test]
    fn unused_suppression_warns() {
        let diags = lint_src("// simlint::allow(wall-clock, reason = \"stale\")\nfn f() {}\n");
        assert!(diags.iter().any(|d| d.rule == "unused-suppression"));
    }

    #[test]
    fn float_accumulation_over_hash_container() {
        let src = r#"
            fn f(m: HashMap<u32, f64>) -> f64 {
                let total: f64 = m.values().sum();
                total
            }
        "#;
        let diags = lint_src(src);
        assert!(
            diags.iter().any(|d| d.rule == "float-unordered-acc"),
            "{diags:?}"
        );
    }

    #[test]
    fn range_index_flags_slices_not_types() {
        let diags = lint_src("fn f(b: &[u8], n: usize) -> &[u8] { &b[..n] }\n");
        assert!(diags.iter().any(|d| d.rule == "range-index"), "{diags:?}");
        let diags = lint_src("fn g(x: [u8; 4]) -> u8 { let a: [u8; 2] = [0, 1]; a[0] }\n");
        assert!(!diags.iter().any(|d| d.rule == "range-index"), "{diags:?}");
    }

    #[test]
    fn identifiers_in_strings_do_not_fire() {
        let src = r#"fn f() -> &'static str { "HashMap Instant::now fs::write unwrap()" }"#;
        assert!(gating(&lint_src(src)).is_empty());
    }
}
