//! Compare the energy footprint of chosen congestion control algorithms,
//! iperf3-style (the paper's §4.3 experiment on your own terms).
//!
//! Usage:
//! `cargo run --release --example cca_energy_comparison -- [bytes] [mtu] [cca ...]`
//! e.g. `... -- 1000000000 9000 cubic bbr dctcp baseline`
//! Defaults: 500 MB at MTU 9000 across all ten algorithms.

use green_envy_repro::analysis::table::Table;
use green_envy_repro::cca::CcaKind;
use green_envy_repro::workload::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let bytes: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000_000);
    let mtu: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(9000);
    let kinds: Vec<CcaKind> = {
        let named: Vec<CcaKind> = args
            .filter_map(|name| {
                let parsed = CcaKind::from_name(&name);
                if parsed.is_none() {
                    eprintln!("unknown algorithm '{name}' (skipped)");
                }
                parsed
            })
            .collect();
        if named.is_empty() {
            CcaKind::ALL.to_vec()
        } else {
            named
        }
    };

    println!("Transmitting {bytes} bytes at MTU {mtu} with each algorithm:\n");
    let mut t = Table::new([
        "cca",
        "fct (s)",
        "goodput (Gbps)",
        "power (W)",
        "energy (J)",
        "retx",
        "energy/GB (J)",
    ]);
    let mut results: Vec<(CcaKind, f64)> = Vec::new();
    for kind in kinds {
        let scenario = Scenario::new(mtu, vec![FlowSpec::bulk(kind, bytes)]);
        let out = workload::scenario::run(&scenario).expect("scenario completes");
        let r = &out.reports[0];
        results.push((kind, out.sender_energy_j));
        t.row([
            kind.name().to_string(),
            format!("{:.3}", r.fct.as_secs_f64()),
            format!("{:.3}", r.mean_goodput.gbps()),
            format!("{:.2}", out.average_sender_power_w()),
            format!("{:.1}", out.sender_energy_j),
            r.retransmits.to_string(),
            format!("{:.1}", out.sender_energy_j / (bytes as f64 / 1e9)),
        ]);
    }
    println!("{t}");

    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (best, best_e) = results.first().expect("at least one algorithm");
    let (worst, worst_e) = results.last().expect("at least one algorithm");
    println!(
        "greenest: {} ({best_e:.1} J); hungriest: {} ({worst_e:.1} J, +{:.1}%)",
        best.name(),
        worst.name(),
        100.0 * (worst_e - best_e) / best_e
    );
}
