//! How background compute load changes the energy story (the paper's
//! §4.2): loaded hosts draw far more base power, and the *marginal*
//! cost of network traffic shrinks — so scheduling tricks save less, in
//! relative terms, on busy machines.
//!
//! Usage: `cargo run --release --example loaded_host -- [per_flow_MB]`

use green_envy_repro::analysis::table::Table;
use green_envy_repro::cca::CcaKind;
use green_envy_repro::netsim::time::SimTime;
use green_envy_repro::workload::prelude::*;

fn main() {
    let per_flow_mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250);
    let bytes = per_flow_mb * 1_000_000;

    // The solo completion time defines the serial schedule; background
    // load does not change completion times, only power.
    let solo = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, bytes)],
    ))
    .expect("solo run completes");
    let flow1_fct = solo.reports[0].completed_at.saturating_since(SimTime::ZERO);

    let mut t = Table::new([
        "background load",
        "fair energy (J)",
        "serial energy (J)",
        "saving (%)",
    ]);
    for load in [0.0, 0.25, 0.5, 0.75] {
        let background = StressLoad::fraction(load);
        let fair = workload::scenario::run(
            &Scenario::new(
                9000,
                vec![
                    FlowSpec::bulk(CcaKind::Cubic, bytes),
                    FlowSpec::bulk(CcaKind::Cubic, bytes),
                ],
            )
            .with_background_load(background),
        )
        .expect("fair completes");
        let serial = workload::scenario::run(
            &Scenario::new(
                9000,
                vec![
                    FlowSpec::bulk(CcaKind::Cubic, bytes),
                    FlowSpec::bulk(CcaKind::Cubic, bytes).with_start_delay(flow1_fct),
                ],
            )
            .with_background_load(background),
        )
        .expect("serial completes");

        // Compare over a common window: a finished host idles at base
        // power, so extend the shorter run analytically.
        let base_w = green_envy_repro::energy::calibration::P_IDLE_W
            + green_envy_repro::energy::calibration::reference_fan().watts(load);
        let w = fair.window.as_secs_f64().max(serial.window.as_secs_f64());
        let fair_e = fair.sender_energy_j + (w - fair.window.as_secs_f64()) * base_w * 2.0;
        let serial_e = serial.sender_energy_j + (w - serial.window.as_secs_f64()) * base_w * 2.0;

        t.row([
            format!("{:.0}%", load * 100.0),
            format!("{fair_e:.1}"),
            format!("{serial_e:.1}"),
            format!("{:.2}", 100.0 * (fair_e - serial_e) / fair_e),
        ]);
    }
    println!(
        "Fair vs full-speed-then-idle, {per_flow_mb} MB per flow, under `stress`:\n\n{t}\n\
         (paper: ~16% idle, ~1% at 25% load, ~0.17% at 75% load — still\n\
         ~$10M/year at 100k racks)"
    );
}
