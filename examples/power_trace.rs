//! Watch a sender's instantaneous power as a flow runs — the time-domain
//! view behind the paper's RAPL measurements: slow-start ramp, steady
//! line-rate plateau, and the drop back to idle at completion.
//!
//! Usage: `cargo run --release --example power_trace -- [cca] [MB]`
//! Defaults: cubic, 500 MB.

use green_envy_repro::analysis::chart::line_chart;
use green_envy_repro::cca::CcaKind;
use green_envy_repro::workload::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cca = args
        .next()
        .and_then(|s| CcaKind::from_name(&s))
        .unwrap_or(CcaKind::Cubic);
    let mb: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);

    let out = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(cca, mb * 1_000_000)],
    ))
    .expect("scenario completes");

    let series = &out.sender_power_series_w[0];
    let bin_s = out.power_bin.as_secs_f64();
    let points: Vec<(f64, f64)> = series
        .iter()
        .enumerate()
        .map(|(i, &w)| ((i as f64 + 0.5) * bin_s * 1000.0, w))
        .collect();

    println!(
        "{} moving {mb} MB: fct {:.3} s, avg power {:.2} W, energy {:.1} J\n",
        cca.name(),
        out.reports[0].fct.as_secs_f64(),
        out.average_sender_power_w(),
        out.sender_energy_j
    );
    println!("sender power (W) vs time (ms):\n");
    println!("{}", line_chart(&[("power", &points)], 70, 14));
    println!(
        "idle reference: {:.2} W | line-rate reference: 35.82 W",
        green_envy_repro::energy::calibration::P_IDLE_W
    );
}
