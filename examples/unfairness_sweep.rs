//! Sweep the bandwidth allocation between two flows and watch energy
//! fall as the split becomes less fair (the paper's Figure 1), with your
//! own parameters.
//!
//! Usage: `cargo run --release --example unfairness_sweep -- [per_flow_MB] [mtu]`
//! Defaults: 500 MB per flow at MTU 9000.

use green_envy_repro::greenenvy::fig1;
use green_envy_repro::workload::prelude::StressLoad;

fn main() {
    let per_flow_mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let mtu: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9000);

    let cfg = fig1::Config {
        per_flow_bytes: per_flow_mb * 1_000_000,
        mtu,
        fractions: (11..20).map(|i| i as f64 * 0.05).collect(),
        seeds: vec![1, 2],
        background: StressLoad::IDLE,
    };
    println!("Sweeping two-flow allocations: {per_flow_mb} MB per flow, MTU {mtu}\n");
    let result = fig1::run(&cfg);
    println!("{}", fig1::render(&result));

    // The monotone story in one line.
    let fair = result
        .points
        .iter()
        .find(|p| p.fraction == 0.5)
        .expect("fair point");
    let serial = result
        .points
        .iter()
        .find(|p| p.fraction == 1.0)
        .expect("serial point");
    println!(
        "fair {:.1} J -> fully unfair {:.1} J: {:.1}% saved",
        fair.energy_j.mean, serial.energy_j.mean, result.peak_savings_pct
    );
}
