//! Quickstart: the paper's headline result in ~40 lines.
//!
//! Two CUBIC flows move 10 Gbit each over a shared 10 Gb/s bottleneck.
//! Schedule A splits the link fairly; schedule B runs the flows
//! back-to-back at line rate ("full speed, then idle"). Both finish at
//! the same time — but B uses measurably less energy, because sender
//! power is a concave function of throughput.
//!
//! Run with: `cargo run --release --example quickstart`

use green_envy_repro::cca::CcaKind;
use green_envy_repro::netsim::time::SimTime;
use green_envy_repro::workload::prelude::*;

const TEN_GBIT: u64 = 1_250_000_000; // bytes

fn main() {
    // Schedule A: both flows start together and share the link fairly.
    let fair = workload::scenario::run(&Scenario::new(
        9000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, TEN_GBIT),
            FlowSpec::bulk(CcaKind::Cubic, TEN_GBIT),
        ],
    ))
    .expect("fair schedule completes");

    // Schedule B: flow 2 waits until flow 1 is done, then takes the
    // whole link.
    let solo = workload::scenario::run(&Scenario::new(
        9000,
        vec![FlowSpec::bulk(CcaKind::Cubic, TEN_GBIT)],
    ))
    .expect("solo run completes");
    let flow1_fct = solo.reports[0].completed_at.saturating_since(SimTime::ZERO);
    let serial = workload::scenario::run(&Scenario::new(
        9000,
        vec![
            FlowSpec::bulk(CcaKind::Cubic, TEN_GBIT),
            FlowSpec::bulk(CcaKind::Cubic, TEN_GBIT).with_start_delay(flow1_fct),
        ],
    ))
    .expect("serial schedule completes");

    println!("schedule            window     sender energy");
    println!(
        "fair share          {:>6.3} s   {:>7.1} J",
        fair.window.as_secs_f64(),
        fair.sender_energy_j
    );
    println!(
        "full-speed-then-idle{:>6.3} s   {:>7.1} J",
        serial.window.as_secs_f64(),
        serial.sender_energy_j
    );
    let saving = 100.0 * (fair.sender_energy_j - serial.sender_energy_j) / fair.sender_energy_j;
    println!("\nunfair schedule saves {saving:.1}% (the paper reports ~16%)");
}
