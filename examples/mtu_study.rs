//! Jumbo frames as an energy feature (the paper's §4.4): sweep the MTU
//! for one algorithm and watch per-packet CPU work dominate the bill at
//! small frames.
//!
//! Usage: `cargo run --release --example mtu_study -- [cca] [bytes]`
//! Defaults: cubic, 500 MB.

use green_envy_repro::analysis::table::Table;
use green_envy_repro::cca::CcaKind;
use green_envy_repro::workload::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cca = args
        .next()
        .and_then(|s| CcaKind::from_name(&s))
        .unwrap_or(CcaKind::Cubic);
    let bytes: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000_000);

    println!("MTU sweep for {} moving {bytes} bytes:\n", cca.name());
    let mut t = Table::new([
        "mtu",
        "goodput (Gbps)",
        "packets sent",
        "power (W)",
        "energy (J)",
    ]);
    let mut first_energy = None;
    let mut last_energy = 0.0;
    for mtu in [1500u32, 3000, 6000, 9000] {
        let out = workload::scenario::run(&Scenario::new(mtu, vec![FlowSpec::bulk(cca, bytes)]))
            .expect("scenario completes");
        let r = &out.reports[0];
        first_energy.get_or_insert(out.sender_energy_j);
        last_energy = out.sender_energy_j;
        t.row([
            mtu.to_string(),
            format!("{:.3}", r.mean_goodput.gbps()),
            r.segs_sent.to_string(),
            format!("{:.2}", out.average_sender_power_w()),
            format!("{:.1}", out.sender_energy_j),
        ]);
    }
    println!("{t}");
    let first = first_energy.expect("at least one MTU ran");
    println!(
        "MTU 1500 -> 9000 saves {:.1}% energy (paper: 13.4%..31.9% depending on CCA)",
        100.0 * (first - last_energy) / first
    );
}
